package skipwebs

import (
	"sync"
	"testing"
	"time"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// buildTwinBlocked builds two identical Blocked webs on two fresh
// clusters, so a workload can run synchronously on one and batched on the
// other and the accounting compared counter for counter.
func buildTwinBlocked(t *testing.T, hosts, n int, seed uint64) (*Cluster, *Blocked, *Cluster, *Blocked, []uint64) {
	t.Helper()
	keys := distinctKeys(xrand.New(seed), n)
	cSync := NewCluster(hosts)
	wSync, err := NewBlocked(cSync, keys, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cBatch := NewCluster(hosts)
	wBatch, err := NewBlocked(cBatch, keys, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return cSync, wSync, cBatch, wBatch, keys
}

// TestFloorBatchMatchesSync checks the acceptance property of the batch
// engine: on an identical workload, batched execution returns the same
// answers with the same per-operation hop counts, and the cluster's
// message and congestion counters match the synchronous path exactly.
func TestFloorBatchMatchesSync(t *testing.T) {
	const hosts, n, ops = 128, 1024, 2000
	cSync, wSync, cBatch, wBatch, _ := buildTwinBlocked(t, hosts, n, 11)
	defer cBatch.Close()

	rng := xrand.New(99)
	qs := make([]uint64, ops)
	origins := make([]HostID, ops)
	for i := range qs {
		qs[i] = rng.Uint64n(1 << 41)
		origins[i] = HostID(rng.Intn(hosts))
	}

	cSync.ResetTraffic()
	want := make([]FloorResult, ops)
	for i := range qs {
		r, err := wSync.Floor(qs[i], origins[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	cBatch.ResetTraffic()
	got, err := wBatch.FloorBatch(qs, origins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("op %d: batch %+v, sync %+v", i, got[i], want[i])
		}
	}

	ss, bs := cSync.Stats(), cBatch.Stats()
	if ss != bs {
		t.Fatalf("accounting diverged:\n sync  %+v\n batch %+v", ss, bs)
	}
	if bs.TotalOps != ops {
		t.Fatalf("batch ops = %d, want %d", bs.TotalOps, ops)
	}
}

// TestInsertDeleteBatchMatchesSync runs an identical update workload
// synchronously and batched and compares per-op hops, final contents, and
// network counters.
func TestInsertDeleteBatchMatchesSync(t *testing.T) {
	const hosts, n, ups = 64, 512, 200
	cSync, wSync, cBatch, wBatch, keys := buildTwinBlocked(t, hosts, n, 12)
	defer cBatch.Close()

	rng := xrand.New(7)
	ins := distinctKeys(rng, n+ups)[n:] // fresh keys absent from the web
	origins := make([]HostID, ups)
	for i := range origins {
		origins[i] = HostID(rng.Intn(hosts))
	}

	cSync.ResetTraffic()
	wantHops := make([]int, ups)
	for i := range ins {
		h, err := wSync.Insert(ins[i], origins[i])
		if err != nil {
			t.Fatal(err)
		}
		wantHops[i] = h
	}
	cBatch.ResetTraffic()
	gotHops, err := wBatch.InsertBatch(ins, origins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gotHops {
		if gotHops[i] != wantHops[i] {
			t.Fatalf("insert %d: batch %d hops, sync %d", i, gotHops[i], wantHops[i])
		}
	}
	if ss, bs := cSync.Stats(), cBatch.Stats(); ss != bs {
		t.Fatalf("insert accounting diverged:\n sync  %+v\n batch %+v", ss, bs)
	}

	// Delete the first half of the original keys the same way.
	del := keys[:ups]
	for i := range del {
		if _, err := wSync.Delete(del[i], origins[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wBatch.DeleteBatch(del, origins); err != nil {
		t.Fatal(err)
	}
	if wSync.Len() != wBatch.Len() {
		t.Fatalf("lengths diverged: sync %d, batch %d", wSync.Len(), wBatch.Len())
	}
	// Both webs must agree on every remaining key.
	probe, perr := wBatch.FloorBatch(keys[ups:], nil)
	if perr != nil {
		t.Fatal(perr)
	}
	for i, k := range keys[ups:] {
		if !probe[i].Found || probe[i].Key != k {
			t.Fatalf("key %d missing after batch deletes: %+v", k, probe[i])
		}
	}
}

// TestInsertBatchSortedRunMatchesSync pins the sorted-run fast path's
// acceptance property: a batch of strictly ascending keys from a single
// pinned origin — the shape that engages run dispatch and descent-prefix
// sharing — must charge exactly the same per-operation hops and cluster
// counters as the same inserts issued one at a time, for every structure
// with a run path (Blocked, OneDim, Bucketed). A mixed unsorted batch is
// re-checked as the control.
func TestInsertBatchSortedRunMatchesSync(t *testing.T) {
	const hosts, n, ups = 64, 512, 256
	type twin struct {
		name   string
		ins    func(k uint64, origin HostID) (int, error) // sync twin
		batch  func(keys []uint64, origins []HostID) ([]int, error)
		cSync  *Cluster
		cBatch *Cluster
	}
	mk := func(seed uint64) []twin {
		keys := distinctKeys(xrand.New(seed), n)
		var tws []twin
		{
			cs, cb := NewCluster(hosts), NewCluster(hosts)
			ws, err := NewBlocked(cs, keys, Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			wb, err := NewBlocked(cb, keys, Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			tws = append(tws, twin{"blocked", ws.Insert, wb.InsertBatch, cs, cb})
		}
		{
			cs, cb := NewCluster(hosts), NewCluster(hosts)
			ws, err := NewOneDim(cs, keys, Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			wb, err := NewOneDim(cb, keys, Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			tws = append(tws, twin{"onedim", ws.Insert, wb.InsertBatch, cs, cb})
		}
		{
			cs, cb := NewCluster(hosts), NewCluster(hosts)
			ws, err := NewBucketed(cs, keys, Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			wb, err := NewBucketed(cb, keys, Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			tws = append(tws, twin{"bucketed", ws.Insert, wb.InsertBatch, cs, cb})
		}
		return tws
	}

	check := func(name string, tw twin, ins []uint64, origins []HostID) {
		t.Helper()
		tw.cSync.ResetTraffic()
		want := make([]int, len(ins))
		for i := range ins {
			h, err := tw.ins(ins[i], origins[i%len(origins)])
			if err != nil {
				t.Fatalf("%s/%s sync insert %d: %v", tw.name, name, i, err)
			}
			want[i] = h
		}
		tw.cBatch.ResetTraffic()
		got, err := tw.batch(ins, origins)
		if err != nil {
			t.Fatalf("%s/%s batch: %v", tw.name, name, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s/%s insert %d: batch %d hops, sync %d", tw.name, name, i, got[i], want[i])
			}
		}
		if ss, bs := tw.cSync.Stats(), tw.cBatch.Stats(); ss != bs {
			t.Fatalf("%s/%s accounting diverged:\n sync  %+v\n batch %+v", tw.name, name, ss, bs)
		}
	}

	// Sorted ascending run, single pinned origin: the fast-path shape.
	rng := xrand.New(99)
	sorted := make([]uint64, 0, ups)
	next := uint64(1) << 41
	for len(sorted) < ups {
		next += 1 + rng.Uint64n(1<<20)
		sorted = append(sorted, next)
	}
	for _, tw := range mk(31) {
		check("sorted-run", tw, sorted, []HostID{3})
	}

	// Unsorted keys over mixed origins: the per-op fallback control.
	mixed := distinctKeys(xrand.New(41), n+ups)[n:]
	origins := make([]HostID, ups)
	for i := range origins {
		origins[i] = HostID(rng.Intn(hosts))
	}
	for _, tw := range mk(41) {
		check("mixed", tw, mixed, origins)
	}
}

// TestBatchAcrossStructures smoke-tests every batch entry point against
// its synchronous twin on small inputs.
func TestBatchAcrossStructures(t *testing.T) {
	const hosts = 32
	rng := xrand.New(21)

	t.Run("onedim", func(t *testing.T) {
		c := NewCluster(hosts)
		defer c.Close()
		keys := distinctKeys(xrand.New(5), 128)
		w, err := NewOneDim(c, keys, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.FloorBatch(keys[:32], nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys[:32] {
			if !res[i].Found || res[i].Key != k {
				t.Fatalf("Floor(%d) = %+v", k, res[i])
			}
		}
		cres, err := w.ContainsBatch([]uint64{keys[0], keys[0] + 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !cres[0].Found || cres[1].Found {
			t.Fatalf("ContainsBatch = %+v", cres)
		}
		if _, err := w.InsertBatch([]uint64{1 << 60, 2 << 60}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := w.DeleteBatch([]uint64{1 << 60, 2 << 60}, nil); err != nil {
			t.Fatal(err)
		}
		if w.Len() != 128 {
			t.Fatalf("len %d after insert+delete round trip", w.Len())
		}
	})

	t.Run("bucketed-range", func(t *testing.T) {
		c := NewCluster(hosts)
		defer c.Close()
		keys := make([]uint64, 256)
		for i := range keys {
			keys[i] = uint64(i) * 10
		}
		w, err := NewBucketed(c, keys, Options{Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.RangeBatch([]KeyRange{{Lo: 100, Hi: 140}, {Lo: 0, Hi: 20}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res[0].Keys) != 5 || res[0].Keys[0] != 100 || res[0].Keys[4] != 140 {
			t.Fatalf("RangeBatch[0] = %+v", res[0])
		}
		if len(res[1].Keys) != 3 {
			t.Fatalf("RangeBatch[1] = %+v", res[1])
		}
	})

	t.Run("points", func(t *testing.T) {
		c := NewCluster(hosts)
		defer c.Close()
		pts := make([]Point, 0, 64)
		seen := map[uint64]bool{}
		for len(pts) < 64 {
			p := Point{uint32(rng.Uint64n(1 << 20)), uint32(rng.Uint64n(1 << 20))}
			k := uint64(p[0])<<32 | uint64(p[1])
			if !seen[k] {
				seen[k] = true
				pts = append(pts, p)
			}
		}
		w, err := NewPoints(c, 2, pts, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		locs, err := w.LocateBatch(pts[:16], nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range locs {
			want, werr := w.Locate(pts[i], HostID(i%hosts))
			if werr != nil {
				t.Fatal(werr)
			}
			if l.Leaf != want.Leaf || l.CellPrefix != want.CellPrefix || l.CellBits != want.CellBits {
				t.Fatalf("LocateBatch[%d] = %+v, sync %+v", i, l, want)
			}
		}
		cres, err := w.ContainsBatch(pts[:4], nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range cres {
			if !r.Found {
				t.Fatalf("ContainsBatch[%d] = %+v", i, r)
			}
		}
		nres, err := w.NearestBatch([]Point{pts[0]}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(nres[0].Point) != 2 || nres[0].Point[0] != pts[0][0] || nres[0].Point[1] != pts[0][1] {
			t.Fatalf("NearestBatch = %+v", nres[0])
		}
		ins := []Point{{1 << 21, 1 << 21}}
		if _, err := w.InsertBatch(ins, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := w.DeleteBatch(ins, nil); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("strings", func(t *testing.T) {
		c := NewCluster(hosts)
		defer c.Close()
		keys := []string{"arge", "argon", "eppstein", "goodrich", "skip", "skipweb", "web"}
		w, err := NewStrings(c, keys, Options{Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.SearchBatch(keys, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if !r.Exact || r.Locus != keys[i] {
				t.Fatalf("SearchBatch[%d] = %+v", i, r)
			}
		}
		cres, err := w.ContainsBatch([]string{"skip", "skipw"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !cres[0].Found || cres[1].Found {
			t.Fatalf("ContainsBatch = %+v", cres)
		}
		pres, err := w.PrefixSearchBatch([]string{"skip", "arg"}, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(pres[0].Keys) != 2 || len(pres[1].Keys) != 2 {
			t.Fatalf("PrefixSearchBatch = %+v", pres)
		}
		if _, err := w.InsertBatch([]string{"podc"}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := w.DeleteBatch([]string{"podc"}, nil); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("planar", func(t *testing.T) {
		c := NewCluster(hosts)
		defer c.Close()
		segs := []PlanarSegment{
			{A: PlanarPoint{X: 10, Y: 40}, B: PlanarPoint{X: 90, Y: 60}},
			{A: PlanarPoint{X: 20, Y: 10}, B: PlanarPoint{X: 80, Y: 20}},
		}
		bounds := PlanarBounds{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
		w, err := NewPlanar(c, segs, bounds, Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		qs := []PlanarPoint{{X: 50, Y: 30}, {X: 50, Y: 80}, {X: 50, Y: 5}}
		got, err := w.LocateBatch(qs, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			want, werr := w.Locate(q, HostID(i%hosts))
			if werr != nil {
				t.Fatal(werr)
			}
			if got[i].HasTop != want.HasTop || got[i].HasBottom != want.HasBottom ||
				got[i].Top != want.Top || got[i].Bottom != want.Bottom {
				t.Fatalf("LocateBatch[%d] = %+v, sync %+v", i, got[i], want)
			}
		}
	})
}

// TestBatchErrorsJoinAndContinue verifies that a failing operation does
// not abort the batch: the other operations complete and the error
// reports the failure.
func TestBatchErrorsJoinAndContinue(t *testing.T) {
	c := NewCluster(16)
	defer c.Close()
	keys := distinctKeys(xrand.New(14), 64)
	w, err := NewBlocked(c, keys, Options{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	// Middle insert is a duplicate and must fail; the other two succeed.
	hops, err := w.InsertBatch([]uint64{1 << 59, keys[0], 2 << 59}, nil)
	if err == nil {
		t.Fatal("duplicate insert did not surface an error")
	}
	if hops[0] <= 0 || hops[2] <= 0 {
		t.Fatalf("surviving inserts got hops %v", hops)
	}
	if w.Len() != 66 {
		t.Fatalf("len = %d, want 66", w.Len())
	}

	if _, err := w.FloorBatch([]uint64{1}, []HostID{99}); err == nil {
		t.Fatal("out-of-range origin accepted")
	}
}

// TestBatchConcurrentReadersAndWriter hammers the single-writer/many-
// reader control from many goroutines; run with -race. Read batches and
// write batches interleave freely and every query must still return a
// correct floor for whatever key set is current.
func TestBatchConcurrentReadersAndWriter(t *testing.T) {
	const hosts = 64
	c := NewCluster(hosts)
	defer c.Close()
	keys := distinctKeys(xrand.New(15), 512)
	w, err := NewBlocked(c, keys, Options{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(g)*7919 + 3)
			qs := make([]uint64, 64)
			for round := 0; round < 10; round++ {
				for i := range qs {
					qs[i] = rng.Uint64n(1 << 41)
				}
				res, err := w.FloorBatch(qs, nil)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				for i, r := range res {
					if r.Found && r.Key > qs[i] {
						t.Errorf("reader %d: floor(%d) = %d above query", g, qs[i], r.Key)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := xrand.New(1009)
		for round := 0; round < 10; round++ {
			fresh := make([]uint64, 8)
			for i := range fresh {
				fresh[i] = 1<<50 + rng.Uint64n(1<<40)
			}
			if _, err := w.InsertBatch(fresh, nil); err != nil {
				// Random collisions across rounds are possible but harmless.
				continue
			}
		}
	}()
	wg.Wait()
	if w.Len() < 512 {
		t.Fatalf("len %d shrank", w.Len())
	}
}

// TestBatchCongestionMatchesSyncAllStructures extends the parity check to
// the multi-dimensional structures: identical query workloads, identical
// total message and congestion counters.
func TestBatchCongestionMatchesSyncAllStructures(t *testing.T) {
	const hosts = 64
	rng := xrand.New(31)
	var pts []Point
	seen := map[uint64]bool{}
	for len(pts) < 256 {
		p := Point{uint32(rng.Uint64n(1 << 20)), uint32(rng.Uint64n(1 << 20))}
		k := uint64(p[0])<<32 | uint64(p[1])
		if !seen[k] {
			seen[k] = true
			pts = append(pts, p)
		}
	}
	build := func() (*Cluster, *Points) {
		c := NewCluster(hosts)
		w, err := NewPoints(c, 2, pts, Options{Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		return c, w
	}
	cSync, wSync := build()
	cBatch, wBatch := build()
	defer cBatch.Close()

	qs := pts[:128]
	origins := make([]HostID, len(qs))
	for i := range origins {
		origins[i] = HostID(rng.Intn(hosts))
	}
	cSync.ResetTraffic()
	for i := range qs {
		if _, err := wSync.Locate(qs[i], origins[i]); err != nil {
			t.Fatal(err)
		}
	}
	cBatch.ResetTraffic()
	if _, err := wBatch.LocateBatch(qs, origins); err != nil {
		t.Fatal(err)
	}
	if ss, bs := cSync.Stats(), cBatch.Stats(); ss != bs {
		t.Fatalf("points accounting diverged:\n sync  %+v\n batch %+v", ss, bs)
	}
}

// TestBatchThroughputScalesWithProcs proves write-stripe parallelism
// without a stopwatch, so it runs (and means the same thing) on any
// machine, any CPU count, any scheduler: it counts per-stripe
// writer-lock acquisitions to show the batch fanned out across all
// stripes, then uses a rendezvous gate installed in the stripe-lock hook
// to show that writers of distinct stripes hold their writer locks at
// the same instant — which is impossible under a single structure-wide
// writer lock. Wall-clock ops/sec vs GOMAXPROCS stays measurable with
// the skipweb-bench -mode=throughput tool, which records the numbers
// this test used to sample (BENCH_WRITERS_PR8.json).
func TestBatchThroughputScalesWithProcs(t *testing.T) {
	const hosts, n, stripes = 64, 4096, 4
	keys := distinctKeys(xrand.New(3), n)
	c := NewCluster(hosts)
	defer c.Close()
	w, err := NewBlocked(c, keys, Options{Seed: 3, WriteStripes: stripes})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.st.n(); got != stripes {
		t.Fatalf("realized %d stripes, want %d", got, stripes)
	}

	// Fan-out accounting: an insert batch spanning every stripe must
	// acquire each stripe's writer lock exactly as many times as the
	// ops routed there, and nothing else.
	rng := xrand.New(4)
	const ops = 256
	ins := make([]uint64, 0, ops)
	perStripe := make([]int64, stripes)
	for len(ins) < ops {
		k := rng.Uint64n(1 << 41)
		ins = append(ins, k)
		perStripe[w.st.of(k)]++
	}
	before := make([]int64, stripes)
	for i := range before {
		before[i] = w.st.writeCount(i)
	}
	if _, err := w.InsertBatch(ins, nil); err != nil {
		t.Fatal(err)
	}
	for i := range perStripe {
		if got := w.st.writeCount(i) - before[i]; got != perStripe[i] {
			t.Fatalf("stripe %d writer-lock acquisitions = %d, want %d", i, got, perStripe[i])
		}
		if perStripe[i] == 0 {
			t.Fatalf("workload left stripe %d idle; widen the key range", i)
		}
	}

	// Rendezvous gate: pick one fresh key per stripe and four distinct
	// origins, then make every stripe writer block inside its
	// writer-lock hook until all four have entered. Under per-stripe
	// locks all four arrive and the gate opens; under any serializing
	// writer lock at most one could ever enter, and the test fails by
	// timeout instead of deadlocking.
	gateKeys := make([]uint64, 0, stripes)
	seen := map[int]bool{}
	for len(gateKeys) < stripes {
		k := rng.Uint64n(1 << 41)
		if s := w.st.of(k); !seen[s] {
			seen[s] = true
			gateKeys = append(gateKeys, k)
		}
	}
	origins := make([]HostID, stripes)
	for i := range origins {
		origins[i] = HostID(i) // distinct hosts: distinct worker goroutines
	}
	entered := make(chan int, stripes)
	release := make(chan struct{})
	w.st.onWrite = func(stripe int) {
		entered <- stripe
		<-release
	}
	batchDone := make(chan error, 1)
	go func() {
		_, err := w.InsertBatch(gateKeys, origins)
		batchDone <- err
	}()
	got := map[int]bool{}
	timeout := time.After(30 * time.Second)
	for len(got) < stripes {
		select {
		case s := <-entered:
			if got[s] {
				t.Errorf("stripe %d entered the gate twice", s)
			}
			got[s] = true
		case <-timeout:
			close(release) // unblock whatever did arrive before failing
			<-batchDone
			t.Fatalf("only %d of %d stripe writers held their locks concurrently", len(got), stripes)
		}
	}
	close(release)
	if err := <-batchDone; err != nil {
		t.Fatal(err)
	}
	w.st.onWrite = nil
	if err := w.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterCloseIdempotent ensures Close works with and without prior
// batch use.
func TestClusterCloseIdempotent(t *testing.T) {
	c := NewCluster(4)
	c.Close()
	c.Close() // double close must be safe

	c2 := NewCluster(8)
	keys := distinctKeys(xrand.New(44), 64)
	w, err := NewBlocked(c2, keys, Options{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.FloorBatch(keys[:8], nil); err != nil {
		t.Fatal(err)
	}
	c2.Close()

	defer func() {
		if recover() == nil {
			t.Fatal("batch after Close did not panic")
		}
	}()
	_, _ = w.FloorBatch(keys[:1], nil)
}
