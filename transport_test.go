package skipwebs

import (
	"errors"
	"testing"
	"time"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// TestWireClusterMatchesSim is the public acceptance property of the
// transport abstraction: the same seeded workload on a simulator-backed
// cluster and a TCP-loopback-backed cluster returns identical answers
// with identical accounting. The model charges (messages, hops,
// congestion) live in the Network layer and the Transport only carries
// dispatch, so Stats must be bit-identical across transports.
func TestWireClusterMatchesSim(t *testing.T) {
	const hosts, n, ops = 16, 512, 600
	keys := distinctKeys(xrand.New(7), n)

	cSim := NewCluster(hosts)
	defer cSim.Close()
	wSim, err := NewBlocked(cSim, keys, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cWire, err := NewWireCluster(hosts)
	if err != nil {
		t.Fatalf("NewWireCluster: %v", err)
	}
	defer cWire.Close()
	wWire, err := NewBlocked(cWire, keys, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	rng := xrand.New(3)
	qs := make([]uint64, ops)
	origins := make([]HostID, ops)
	for i := range qs {
		qs[i] = rng.Uint64n(1 << 41)
		origins[i] = HostID(rng.Intn(hosts))
	}

	cSim.ResetTraffic()
	cWire.ResetTraffic()
	want, err := wSim.FloorBatch(qs, origins)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wWire.FloorBatch(qs, origins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("op %d: wire %+v, sim %+v", i, got[i], want[i])
		}
	}
	if ss, ws := cSim.Stats(), cWire.Stats(); ss != ws {
		t.Fatalf("accounting diverged across transports:\n sim  %+v\n wire %+v", ss, ws)
	}
}

// TestSetDoTimeoutPublic pins the public per-call deadline: a stalled
// host surfaces the typed, errors.Is-matchable timeout through the
// re-exported error values, on both transports.
func TestSetDoTimeoutPublic(t *testing.T) {
	mk := map[string]func(t *testing.T) *Cluster{
		"sim": func(t *testing.T) *Cluster { return NewCluster(4) },
		"wire": func(t *testing.T) *Cluster {
			c, err := NewWireCluster(4)
			if err != nil {
				t.Fatalf("NewWireCluster: %v", err)
			}
			return c
		},
	}
	for name, newCluster := range mk {
		t.Run(name, func(t *testing.T) {
			c := newCluster(t)
			// Deadline set before the worker pool spins up must still
			// apply to the lazily-started transport.
			c.SetDoTimeout(75 * time.Millisecond)
			tr := c.cluster()
			block := make(chan struct{})
			entered := make(chan struct{})
			tr.Go(1, func() { close(entered); <-block })
			<-entered

			err := tr.Do(1, func() {})
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("Do on wedged host: got %v, want ErrTimeout", err)
			}
			var te *TimeoutError
			if !errors.As(err, &te) || te.Host != 1 {
				t.Fatalf("timeout error carries wrong host: %v", err)
			}
			close(block)
			c.Close()
		})
	}
}
