package skipwebs

import (
	"sort"
	"testing"

	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// TestStripeSetRouting pins the routing contract: every build code
// routes to the stripe whose chunk held it, separators are exclusive
// upper bounds, ties never straddle a boundary, and degenerate inputs
// collapse to fewer stripes.
func TestStripeSetRouting(t *testing.T) {
	keys := experiments.Keys(xrand.New(7), 1000, 1<<40)
	st, parts := splitKeysByStripe(keys, 4)
	if st.n() != 4 {
		t.Fatalf("want 4 stripes over 1000 distinct keys, got %d", st.n())
	}
	total := 0
	for i, part := range parts {
		if len(part) == 0 {
			t.Fatalf("stripe %d empty at build", i)
		}
		total += len(part)
		for _, k := range part {
			if got := st.of(k); got != i {
				t.Fatalf("key %d in chunk %d routes to %d", k, i, got)
			}
		}
		if !sort.SliceIsSorted(part, func(a, b int) bool { return part[a] < part[b] }) {
			t.Fatalf("stripe %d chunk not sorted", i)
		}
	}
	if total != len(keys) {
		t.Fatalf("chunks cover %d of %d keys", total, len(keys))
	}
	for i, sep := range st.seps {
		if got := st.of(sep); got != i+1 {
			t.Fatalf("separator %d routes to %d, want %d (inclusive lower bound)", sep, got, i+1)
		}
		if got := st.of(sep - 1); got != i {
			t.Fatalf("sep-1 routes to %d, want %d", got, i)
		}
	}

	// Ties: all-equal codes must collapse to one stripe.
	same := make([]uint64, 64)
	for i := range same {
		same[i] = 42
	}
	if st := newStripeSet(same, 4); st.n() != 1 {
		t.Fatalf("all-equal codes split into %d stripes", st.n())
	}

	// More stripes than keys clamps.
	st, parts = splitKeysByStripe([]uint64{5, 9}, 8)
	if st.n() > 2 {
		t.Fatalf("2 keys split into %d stripes", st.n())
	}
	if n := len(parts[0]) + len(parts[len(parts)-1]); st.n() == 2 && n != 2 {
		t.Fatalf("clamped split lost keys: %v", parts)
	}

	// Unsharded requests build one stripe from the untouched input.
	st, parts = splitKeysByStripe([]uint64{9, 5, 7}, 1)
	if st.n() != 1 || len(parts) != 1 || parts[0][0] != 9 {
		t.Fatalf("want <= 1 must pass the input through unmodified, got %v", parts)
	}
}

// TestStripeSeedDerivation pins the seed contract: unsharded structures
// use the cluster seed verbatim (bit-identical to pre-striping builds),
// sharded stripes draw distinct deterministic substreams.
func TestStripeSeedDerivation(t *testing.T) {
	if got := stripeSeed(12345, 0, 1); got != 12345 {
		t.Fatalf("single-stripe seed changed: %d", got)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		s := stripeSeed(12345, i, 16)
		if seen[s] {
			t.Fatalf("duplicate substream seed at stripe %d", i)
		}
		seen[s] = true
		if s != stripeSeed(12345, i, 16) {
			t.Fatal("substream seed not deterministic")
		}
	}
}

// TestStringCodeOrder pins the string-code coarsening: codes are
// monotone in string order, so stripe chunks respect lexicographic
// order and a strict code inequality implies the string inequality.
func TestStringCodeOrder(t *testing.T) {
	keys := experiments.UniformStrings(xrand.New(3), 400, "acgt", 1, 24)
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if stringCode(sorted[i-1]) > stringCode(sorted[i]) {
			t.Fatalf("code order violates string order at %q < %q", sorted[i-1], sorted[i])
		}
	}
	st, parts := splitStringsByStripe(keys, 4)
	total := 0
	for i, part := range parts {
		total += len(part)
		for _, s := range part {
			if got := st.of(stringCode(s)); got != i {
				t.Fatalf("string %q in chunk %d routes to %d", s, i, got)
			}
		}
	}
	if total != len(keys) {
		t.Fatalf("chunks cover %d of %d strings", total, len(keys))
	}
}

// stripedWorkload is the shared fixture of the concurrent-vs-serial
// parity tests: build keys, update keys, and per-op origins drawn from a
// fixed seed.
func stripedWorkload(seed uint64, hosts, build, updates int) (buildKeys, ins []uint64, origins []HostID) {
	keys := experiments.Keys(xrand.New(seed), build+updates, 1<<40)
	rng := xrand.New(seed + 1)
	origins = make([]HostID, updates)
	for i := range origins {
		origins[i] = HostID(rng.Intn(hosts))
	}
	return keys[:build], keys[build:], origins
}

// assertStripedParity applies the same update workload to two identical
// striped structures — concurrently batched on one, serially per-op on
// the other — and asserts bit-identical per-op hop counts and cluster
// counters. Stripe isolation makes the concurrent schedule equivalent to
// any serial interleaving that preserves per-stripe order; the serial
// control is one such interleaving.
func assertStripedParity(t *testing.T, name string, cBatch, cSerial *Cluster,
	batch func() ([]int, error), serial func(i int) (int, error), n int) {
	t.Helper()
	cBatch.ResetTraffic()
	cSerial.ResetTraffic()
	gotHops, err := batch()
	if err != nil {
		t.Fatalf("%s: batch: %v", name, err)
	}
	for i := 0; i < n; i++ {
		h, err := serial(i)
		if err != nil {
			t.Fatalf("%s: serial op %d: %v", name, i, err)
		}
		if h != gotHops[i] {
			t.Fatalf("%s: op %d hops: batch %d, serial %d", name, i, gotHops[i], h)
		}
	}
	sb, ss := cBatch.Stats(), cSerial.Stats()
	if sb.TotalMessages != ss.TotalMessages || sb.TotalOps != ss.TotalOps || sb.MaxCongestion != ss.MaxCongestion {
		t.Fatalf("%s: counters diverge: batch {msgs %d ops %d cong %d}, serial {msgs %d ops %d cong %d}",
			name, sb.TotalMessages, sb.TotalOps, sb.MaxCongestion, ss.TotalMessages, ss.TotalOps, ss.MaxCongestion)
	}
}

// TestStripedBatchMatchesSerialOneDim: concurrent striped InsertBatch +
// DeleteBatch charge exactly what per-op serial execution charges on an
// identically striped structure — per-op hops and every cluster counter.
func TestStripedBatchMatchesSerialOneDim(t *testing.T) {
	const hosts, build, updates, S = 32, 512, 256, 4
	buildKeys, ins, origins := stripedWorkload(21, hosts, build, updates)
	cb := NewCluster(hosts)
	defer cb.Close()
	wb, err := NewOneDim(cb, buildKeys, Options{Seed: 5, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCluster(hosts)
	ws, err := NewOneDim(cs, buildKeys, Options{Seed: 5, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	if wb.st.n() != S {
		t.Fatalf("realized %d stripes, want %d", wb.st.n(), S)
	}
	assertStripedParity(t, "onedim/insert", cb, cs,
		func() ([]int, error) { return wb.InsertBatch(ins, origins) },
		func(i int) (int, error) { return ws.Insert(ins[i], origins[i]) }, updates)
	del := ins[:updates/2]
	assertStripedParity(t, "onedim/delete", cb, cs,
		func() ([]int, error) { return wb.DeleteBatch(del, origins) },
		func(i int) (int, error) { return ws.Delete(del[i], origins[i]) }, updates/2)
	if err := wb.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	want := append([]uint64(nil), buildKeys...)
	want = append(want, ins[updates/2:]...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := wb.Keys()
	if len(got) != len(want) {
		t.Fatalf("key count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %d, want %d (striped concatenation must be sorted)", i, got[i], want[i])
		}
	}
}

// TestStripedBatchMatchesSerialBlocked is the blocked-web variant, with
// round-robin origins so singleton dispatch and the run fast path mix.
func TestStripedBatchMatchesSerialBlocked(t *testing.T) {
	const hosts, build, updates, S = 32, 512, 256, 4
	buildKeys, ins, origins := stripedWorkload(22, hosts, build, updates)
	cb := NewCluster(hosts)
	defer cb.Close()
	wb, err := NewBlocked(cb, buildKeys, Options{Seed: 6, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCluster(hosts)
	ws, err := NewBlocked(cs, buildKeys, Options{Seed: 6, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	assertStripedParity(t, "blocked/insert", cb, cs,
		func() ([]int, error) { return wb.InsertBatch(ins, origins) },
		func(i int) (int, error) { return ws.Insert(ins[i], origins[i]) }, updates)
	del := ins[:updates/2]
	assertStripedParity(t, "blocked/delete", cb, cs,
		func() ([]int, error) { return wb.DeleteBatch(del, origins) },
		func(i int) (int, error) { return ws.Delete(del[i], origins[i]) }, updates/2)
	if err := wb.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

// TestStripedSortedRunAcrossBoundary pins the cross-stripe-boundary run
// split: a single-origin strictly ascending insert batch spanning every
// stripe engages the sorted-run fast path, splits at each separator, and
// still charges exactly the serial per-op messages.
func TestStripedSortedRunAcrossBoundary(t *testing.T) {
	const hosts, build, updates, S = 32, 512, 256, 4
	buildKeys, ins, _ := stripedWorkload(23, hosts, build, updates)
	sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	origins := []HostID{3} // one origin: the whole batch is one ascending run
	cb := NewCluster(hosts)
	defer cb.Close()
	wb, err := NewBlocked(cb, buildKeys, Options{Seed: 7, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCluster(hosts)
	ws, err := NewBlocked(cs, buildKeys, Options{Seed: 7, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	// The ascending batch must span all stripes so runs straddle
	// separators.
	stripesHit := map[int]bool{}
	for _, k := range ins {
		stripesHit[wb.st.of(k)] = true
	}
	if len(stripesHit) != S {
		t.Fatalf("workload hits %d of %d stripes; widen the key range", len(stripesHit), S)
	}
	assertStripedParity(t, "blocked/run", cb, cs,
		func() ([]int, error) { return wb.InsertBatch(ins, origins) },
		func(i int) (int, error) { return ws.Insert(ins[i], HostID(3)) }, updates)
	// Every separator key must be present and routed correctly.
	if err := wb.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	for _, k := range ins {
		r, err := wb.Floor(k, 0)
		if err != nil || !r.Found || r.Key != k {
			t.Fatalf("run-inserted key %d missing (res=%+v err=%v)", k, r, err)
		}
	}
}

// TestStripedBatchMatchesSerialBucketed is the bucket-web variant.
func TestStripedBatchMatchesSerialBucketed(t *testing.T) {
	const hosts, build, updates, S = 16, 512, 128, 4
	buildKeys, ins, origins := stripedWorkload(24, hosts, build, updates)
	cb := NewCluster(hosts)
	defer cb.Close()
	wb, err := NewBucketed(cb, buildKeys, Options{Seed: 8, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCluster(hosts)
	ws, err := NewBucketed(cs, buildKeys, Options{Seed: 8, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	assertStripedParity(t, "bucketed/insert", cb, cs,
		func() ([]int, error) { return wb.InsertBatch(ins, origins) },
		func(i int) (int, error) { return ws.Insert(ins[i], origins[i]) }, updates)
	if err := wb.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

// TestStripedBatchMatchesSerialPoints is the point-set variant: stripe
// routing on Morton codes.
func TestStripedBatchMatchesSerialPoints(t *testing.T) {
	const hosts, build, updates, S = 16, 512, 128, 4
	raw := experiments.UniformPoints(xrand.New(25), 2, build+updates, 1<<30)
	pts := make([]Point, len(raw))
	for i, p := range raw {
		pts[i] = Point(p)
	}
	rng := xrand.New(26)
	origins := make([]HostID, updates)
	for i := range origins {
		origins[i] = HostID(rng.Intn(hosts))
	}
	cb := NewCluster(hosts)
	defer cb.Close()
	wb, err := NewPoints(cb, 2, pts[:build], Options{Seed: 9, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCluster(hosts)
	ws, err := NewPoints(cs, 2, pts[:build], Options{Seed: 9, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	ins := pts[build:]
	assertStripedParity(t, "points/insert", cb, cs,
		func() ([]int, error) { return wb.InsertBatch(ins, origins) },
		func(i int) (int, error) { return ws.Insert(ins[i], origins[i]) }, updates)
	del := ins[:updates/2]
	assertStripedParity(t, "points/delete", cb, cs,
		func() ([]int, error) { return wb.DeleteBatch(del, origins) },
		func(i int) (int, error) { return ws.Delete(del[i], origins[i]) }, updates/2)
	if err := wb.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	// Cross-stripe reads stay exact: nearest of each remaining insert is
	// itself.
	for _, q := range ins[updates/2 : updates/2+16] {
		got, _, err := wb.Nearest(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != q[0] || got[1] != q[1] {
			t.Fatalf("nearest of stored point %v = %v", q, got)
		}
	}
}

// TestStripedBatchMatchesSerialStrings is the string-trie variant:
// stripe routing on first-eight-byte codes.
func TestStripedBatchMatchesSerialStrings(t *testing.T) {
	const hosts, build, updates, S = 16, 512, 128, 4
	keys := experiments.UniformStrings(xrand.New(27), build+updates, "acgt", 6, 24)
	rng := xrand.New(28)
	origins := make([]HostID, updates)
	for i := range origins {
		origins[i] = HostID(rng.Intn(hosts))
	}
	cb := NewCluster(hosts)
	defer cb.Close()
	wb, err := NewStrings(cb, keys[:build], Options{Seed: 10, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCluster(hosts)
	ws, err := NewStrings(cs, keys[:build], Options{Seed: 10, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	ins := keys[build:]
	assertStripedParity(t, "strings/insert", cb, cs,
		func() ([]int, error) { return wb.InsertBatch(ins, origins) },
		func(i int) (int, error) { return ws.Insert(ins[i], origins[i]) }, updates)
	if err := wb.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	// Cross-stripe reads stay exact: membership and prefix enumeration.
	for _, k := range ins[:16] {
		ok, _, err := wb.Contains(k, 0)
		if err != nil || !ok {
			t.Fatalf("inserted key %q missing (ok=%v err=%v)", k, ok, err)
		}
	}
	all, _, err := wb.PrefixSearch("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != build+updates {
		t.Fatalf("PrefixSearch(\"\") found %d of %d keys", len(all), build+updates)
	}
	if !sort.StringsAreSorted(all) {
		t.Fatal("striped prefix enumeration not sorted")
	}
}

// TestStripedQueriesCrossStripes pins cross-stripe read semantics on the
// one-dimensional webs: floor falls back across lower stripes, range
// unions every overlapping stripe, and a fully drained stripe degrades
// to its lower neighbor instead of failing.
func TestStripedQueriesCrossStripes(t *testing.T) {
	const hosts, n, S = 16, 400, 4
	keys := experiments.Keys(xrand.New(31), n, 1<<40)
	c := NewCluster(hosts)
	w, err := NewBlocked(c, keys, Options{Seed: 11, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Floor of each separator-1 must come from the stripe below.
	for _, sep := range w.st.seps {
		r, err := w.Floor(sep-1, 0)
		if err != nil {
			t.Fatal(err)
		}
		j := sort.Search(len(sorted), func(i int) bool { return sorted[i] > sep-1 })
		if j == 0 {
			continue
		}
		if !r.Found || r.Key != sorted[j-1] {
			t.Fatalf("floor(%d) = %+v, want %d", sep-1, r, sorted[j-1])
		}
	}
	// Range spanning all stripes returns the full sorted set.
	got, _, err := w.Range(0, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("full range returned %d of %d keys", len(got), n)
	}
	for i := range got {
		if got[i] != sorted[i] {
			t.Fatalf("range[%d] = %d, want %d", i, got[i], sorted[i])
		}
	}
	// Drain stripe 1 entirely; floor queries into its range must fall
	// back to stripe 0's maximum, and reinserting must work.
	var stripe1 []uint64
	for _, k := range keys {
		if w.st.of(k) == 1 {
			stripe1 = append(stripe1, k)
		}
	}
	for _, k := range stripe1 {
		if _, err := w.Delete(k, 0); err != nil {
			t.Fatalf("drain delete %d: %v", k, err)
		}
	}
	probe := w.st.seps[1] - 1 // top of stripe 1's range
	r, err := w.Floor(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	j := sort.Search(len(sorted), func(i int) bool { return w.st.of(sorted[i]) >= 1 })
	if !r.Found || r.Key != sorted[j-1] {
		t.Fatalf("floor through drained stripe = %+v, want %d", r, sorted[j-1])
	}
	if _, err := w.Insert(stripe1[0], 0); err != nil {
		t.Fatalf("reinsert into drained stripe: %v", err)
	}
	r, err = w.Floor(stripe1[0], 0)
	if err != nil || !r.Found || r.Key != stripe1[0] {
		t.Fatalf("reinserted key missing (res=%+v err=%v)", r, err)
	}
	if err := w.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}
