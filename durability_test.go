package skipwebs

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// TestRestartShardIntact is the tentpole acceptance property: on a
// durable cluster a crashed host Restarts with its shard intact — the
// checkpoint+WAL replay restores its storage exactly, the merkle
// reconcile against live peers finds zero divergence (nothing changed
// while it was down), and not one unit is re-copied.
func TestRestartShardIntact(t *testing.T) {
	f := buildFixture(t, 8, 2, 901, true)
	control := buildFixture(t, 8, 2, 901, true)
	victim := f.c.HostAt(3)
	before := f.c.net.Storage(victim)
	if before == 0 {
		t.Fatal("fixture placed nothing on the victim — pick another host")
	}
	if err := f.c.Crash(victim); err != nil {
		t.Fatalf("durable crash returned %v, want nil (the host is expected back)", err)
	}
	if got := f.c.net.Storage(victim); got != 0 {
		t.Fatalf("crashed storage = %d, want 0", got)
	}
	// Failover keeps every query answerable from surviving replicas.
	got, want := f.queryAll(t, 777), control.queryAll(t, 777)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mid-crash answer %d = %v, control says %v", i, got[i], want[i])
		}
	}

	stats, err := f.c.Restart(victim)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if stats.CopiedUnits != 0 {
		t.Fatalf("restart with no divergence copied %d units, want 0", stats.CopiedUnits)
	}
	if stats.ReplayMsgs < 1 {
		t.Fatalf("replay messages = %d, want >= 1 (the checkpoint load)", stats.ReplayMsgs)
	}
	if stats.MerkleMsgs < 1 {
		t.Fatalf("merkle messages = %d, want >= 1 (the root comparison walk)", stats.MerkleMsgs)
	}
	if got := f.c.net.Storage(victim); got != before {
		t.Fatalf("restored storage = %d, want the pre-crash %d", got, before)
	}
	if err := f.c.CheckConsistent(); err != nil {
		t.Fatalf("after restart: %v", err)
	}
	got, want = f.queryAll(t, 778), control.queryAll(t, 778)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-restart answer %d = %v, control says %v", i, got[i], want[i])
		}
	}
	f.checkAllKeys(t, "after restart")
	// The restored image is exact: a cooperative Leave migrates every
	// unit off and leaves zero residual storage, so replay did not
	// resurrect stale units or drop live ones.
	if err := f.c.Leave(victim); err != nil {
		t.Fatalf("leave after restart: %v", err)
	}
	if got := f.c.net.Storage(victim); got != 0 {
		t.Fatalf("residual storage after leave = %d, want 0 (image was inexact)", got)
	}
	if err := f.c.CheckConsistent(); err != nil {
		t.Fatalf("after leave: %v", err)
	}
}

// TestRestartAfterDivergence crashes a host, runs inserts and deletes
// while it is down (write-throughs to its stale replicas are suppressed
// and recorded as divergence), then Restarts it: the merkle reconcile
// must copy the diverged units — and only then do answers match a
// crash-free control that saw the same updates.
func TestRestartAfterDivergence(t *testing.T) {
	const seed = 902
	f := buildFixture(t, 8, 2, seed, true)
	control := buildFixture(t, 8, 2, seed, true)
	// Same rng, longer run: [:300] reproduces the fixture keys, the
	// tail is fresh and distinct from them.
	all := distinctKeys(xrand.New(seed), 400)
	fresh := all[300:]

	victim := f.c.HostAt(3)
	if err := f.c.Crash(victim); err != nil {
		t.Fatalf("durable crash: %v", err)
	}
	mutate := func(x *failoverFixture) {
		t.Helper()
		for i, k := range fresh {
			origin := x.c.HostAt(i)
			if _, err := x.oned.Insert(k, origin); err != nil {
				t.Fatalf("onedim insert: %v", err)
			}
			if _, err := x.block.Insert(k, origin); err != nil {
				t.Fatalf("blocked insert: %v", err)
			}
			if _, err := x.bucket.Insert(k, origin); err != nil {
				t.Fatalf("bucketed insert: %v", err)
			}
		}
		for i, k := range f.keys[:40] {
			origin := x.c.HostAt(i + 1)
			if _, err := x.oned.Delete(k, origin); err != nil {
				t.Fatalf("onedim delete: %v", err)
			}
			if _, err := x.block.Delete(k, origin); err != nil {
				t.Fatalf("blocked delete: %v", err)
			}
			if _, err := x.bucket.Delete(k, origin); err != nil {
				t.Fatalf("bucketed delete: %v", err)
			}
		}
	}
	mutate(f)
	mutate(control)

	stats, err := f.c.Restart(victim)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if stats.CopiedUnits == 0 {
		t.Fatal("updates diverged the victim's replicas but restart copied 0 units")
	}
	if err := f.c.CheckConsistent(); err != nil {
		t.Fatalf("after divergent restart: %v", err)
	}
	check := func(x *failoverFixture, name string) {
		t.Helper()
		for i, k := range append(append([]uint64{}, f.keys[40:]...), fresh...) {
			origin := x.c.HostAt(i)
			if ok, _, err := x.oned.Contains(k, origin); err != nil || !ok {
				t.Fatalf("%s: onedim lost key %d: %v", name, k, err)
			}
			if r, err := x.block.Floor(k, origin); err != nil || !r.Found || r.Key != k {
				t.Fatalf("%s: blocked lost key %d: %v", name, k, err)
			}
			if r, err := x.bucket.Floor(k, origin); err != nil || !r.Found || r.Key != k {
				t.Fatalf("%s: bucketed lost key %d: %v", name, k, err)
			}
		}
	}
	check(f, "restarted")
	check(control, "control")
	got, want := f.queryAll(t, 881), control.queryAll(t, 881)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-reconcile answer %d = %v, control says %v", i, got[i], want[i])
		}
	}
}

// TestRestartValidation pins the clean-error contract of
// Cluster.Restart.
func TestRestartValidation(t *testing.T) {
	// Non-durable cluster: Restart is meaningless.
	c := NewCluster(4)
	rng := xrand.New(5)
	if _, err := NewOneDim(c, distinctKeys(rng, 64), Options{Seed: 5, Replicas: 2}); err != nil {
		t.Fatal(err)
	}
	victim := c.HostAt(1)
	if err := c.Crash(victim); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if _, err := c.Restart(victim); err == nil || !strings.Contains(err.Error(), "durable") {
		t.Fatalf("restart on non-durable cluster returned %v, want a durability error", err)
	}

	// Durable cluster: only a crashed host restarts.
	d := NewCluster(4)
	if _, err := NewOneDim(d, distinctKeys(xrand.New(6), 64), Options{Seed: 6, Replicas: 2, Durable: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Restart(d.HostAt(1)); err == nil || !strings.Contains(err.Error(), "not crashed") {
		t.Fatalf("restart of a live host returned %v, want a not-crashed error", err)
	}
	if _, err := d.Restart(HostID(999)); err == nil {
		t.Fatal("restart of an unknown host succeeded")
	}
	target := d.HostAt(2)
	if err := d.Crash(target); err != nil {
		t.Fatalf("durable crash: %v", err)
	}
	if _, err := d.Restart(target); err != nil {
		t.Fatalf("valid restart failed: %v", err)
	}
	if _, err := d.Restart(target); err == nil {
		t.Fatal("second restart of the same host succeeded")
	}
}

// TestDataLossErrorMessage pins that DataLossError says what was lost:
// the unit count, the dead hosts, and the per-structure split.
func TestDataLossErrorMessage(t *testing.T) {
	e := &DataLossError{
		Units:      7,
		Hosts:      []HostID{2, 5},
		Structures: map[string]int{"onedim": 3, "blocked": 4},
	}
	want := "core: 7 storage units lost (no surviving replica); dead hosts [2 5]; per structure: blocked=4, onedim=3"
	if got := e.Error(); got != want {
		t.Fatalf("DataLossError message:\n got %q\nwant %q", got, want)
	}

	// End to end: a k=1 crash on a durable cluster loses units only
	// when Repair gives the host up — and the error then names the dead
	// host and every structure that lost units.
	f := buildFixture(t, 8, 1, 903, true)
	victim := f.c.HostAt(2)
	if err := f.c.Crash(victim); err != nil {
		t.Fatalf("durable crash returned %v, want nil even at k=1 (Restart could still save it)", err)
	}
	err := f.c.Repair()
	var dl *DataLossError
	if !errors.As(err, &dl) {
		t.Fatalf("k=1 repair returned %v, want DataLossError", err)
	}
	if dl.Units <= 0 {
		t.Fatalf("lost units = %d, want > 0", dl.Units)
	}
	if len(dl.Hosts) != 1 || dl.Hosts[0] != victim {
		t.Fatalf("dead hosts = %v, want [%d]", dl.Hosts, victim)
	}
	if len(dl.Structures) == 0 {
		t.Fatal("per-structure breakdown is empty")
	}
	sum := 0
	for name, units := range dl.Structures {
		if units <= 0 {
			t.Fatalf("structure %q reports %d lost units", name, units)
		}
		sum += units
	}
	if sum != dl.Units {
		t.Fatalf("per-structure units sum to %d, total says %d", sum, dl.Units)
	}
	if !strings.Contains(err.Error(), "dead hosts") {
		t.Fatalf("aggregated error %q does not name the dead hosts", err)
	}
}

// TestRepairDischargesImage pins the repair/restart interlock: Repair
// gives up a crashed host's replicas (re-homing them onto survivors)
// and discharges its durable image, so a later Restart brings the host
// back live but without the units repair already re-homed — nothing is
// double-counted or resurrected.
func TestRepairDischargesImage(t *testing.T) {
	f := buildFixture(t, 8, 2, 904, true)
	victim := f.c.HostAt(3)
	if err := f.c.Crash(victim); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := f.c.Repair(); err != nil {
		t.Fatalf("k=2 repair lost units: %v", err)
	}
	if img := f.c.net.DurableImage(victim); img != 0 {
		t.Fatalf("durable image after give-up repair = %d, want 0", img)
	}
	stats, err := f.c.Restart(victim)
	if err != nil {
		t.Fatalf("restart after repair: %v", err)
	}
	if stats.CopiedUnits != 0 {
		t.Fatalf("restart after repair copied %d units, want 0 (repair owns them now)", stats.CopiedUnits)
	}
	if got := f.c.net.Storage(victim); got != 0 {
		t.Fatalf("storage after restart = %d, want 0 (the shard was repaired away)", got)
	}
	if err := f.c.CheckConsistent(); err != nil {
		t.Fatalf("after repair+restart: %v", err)
	}
	f.checkAllKeys(t, "after repair+restart")
	// The revived host is a first-class citizen again: it can host new
	// load via a Join rebalance... or simply crash again cleanly.
	f.c.Join()
	if err := f.c.CheckConsistent(); err != nil {
		t.Fatalf("after regrow: %v", err)
	}
}

// TestDurableDoubleFailure is the double-failure property (run with
// -race): a second host crashes while the first one's recovery is
// racing reads, at Replicas 3 on the blocked and bucketed engines.
// Every interleaving must either answer exactly like a crash-free
// control or fail with a typed error — never silently diverge.
func TestDurableDoubleFailure(t *testing.T) {
	const seed = 905
	c := NewCluster(10)
	control := NewCluster(10)
	keys := distinctKeys(xrand.New(seed), 500)
	build := func(cl *Cluster) (*Blocked, *Bucketed) {
		t.Helper()
		bl, err := NewBlocked(cl, keys[:300], Options{Seed: seed, Replicas: 3, Durable: true})
		if err != nil {
			t.Fatal(err)
		}
		bu, err := NewBucketed(cl, keys[:300], Options{Seed: seed + 1, Replicas: 3, Durable: true})
		if err != nil {
			t.Fatal(err)
		}
		return bl, bu
	}
	bl, bu := build(c)
	cbl, cbu := build(control)

	h1, h2 := c.HostAt(2), c.HostAt(5)
	if err := c.Crash(h1); err != nil {
		t.Fatalf("first crash: %v", err)
	}
	// Diverge the down host's replicas.
	if _, err := bl.InsertBatch(keys[300:400], nil); err != nil {
		t.Fatalf("blocked inserts: %v", err)
	}
	if _, err := bu.InsertBatch(keys[300:400], nil); err != nil {
		t.Fatalf("bucketed inserts: %v", err)
	}

	// Race: h1's restart, h2's crash, and floor batches all in flight.
	// The write lock serializes restart against crash in either order;
	// k=3 keeps a live replica through any interleaving.
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		if _, err := c.Restart(h1); err != nil {
			t.Errorf("restart h1: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		if err := c.Crash(h2); err != nil {
			t.Errorf("crash h2: %v", err)
		}
	}()
	for g := 0; g < 2; g++ {
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				rs, err := bl.FloorBatch(keys[:100], nil)
				if err != nil {
					t.Errorf("reader %d blocked batch: %v", g, err)
					return
				}
				for i, fr := range rs {
					if !fr.Found || fr.Key != keys[i] {
						t.Errorf("reader %d: blocked floor(%d) = (%d,%v) mid-recovery", g, keys[i], fr.Key, fr.Found)
						return
					}
				}
				if _, err := bu.FloorBatch(keys[100:200], nil); err != nil {
					t.Errorf("reader %d bucketed batch: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if _, err := c.Restart(h2); err != nil {
		t.Fatalf("restart h2: %v", err)
	}
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("after double failure: %v", err)
	}
	// The control applies the same inserts crash-free; every answer must
	// agree.
	if _, err := cbl.InsertBatch(keys[300:400], nil); err != nil {
		t.Fatalf("control blocked inserts: %v", err)
	}
	if _, err := cbu.InsertBatch(keys[300:400], nil); err != nil {
		t.Fatalf("control bucketed inserts: %v", err)
	}
	rng := xrand.New(999)
	for i := 0; i < 300; i++ {
		q := rng.Uint64n(1 << 40)
		origin, corigin := c.HostAt(i), control.HostAt(i)
		gb, err := bl.Floor(q, origin)
		if err != nil {
			t.Fatalf("blocked floor: %v", err)
		}
		wb, err := cbl.Floor(q, corigin)
		if err != nil {
			t.Fatalf("control blocked floor: %v", err)
		}
		if gb.Key != wb.Key || gb.Found != wb.Found {
			t.Fatalf("blocked floor(%d) = (%d,%v), control says (%d,%v)", q, gb.Key, gb.Found, wb.Key, wb.Found)
		}
		gu, err := bu.Floor(q, origin)
		if err != nil {
			t.Fatalf("bucketed floor: %v", err)
		}
		wu, err := cbu.Floor(q, corigin)
		if err != nil {
			t.Fatalf("control bucketed floor: %v", err)
		}
		if gu.Key != wu.Key || gu.Found != wu.Found {
			t.Fatalf("bucketed floor(%d) = (%d,%v), control says (%d,%v)", q, gu.Key, gu.Found, wu.Key, wu.Found)
		}
	}
}

// TestDurableOffBitIdentical pins the opt-in guarantee: with
// Options.Durable left false the cluster never becomes durable and the
// message accounting is bit-identical to a durable build's control —
// durability is charged only when asked for.
func TestDurableOffBitIdentical(t *testing.T) {
	a := buildFixture(t, 8, 2, 906, false)
	b := buildFixture(t, 8, 2, 906, false)
	if a.c.net.Durable() {
		t.Fatal("Durable=false build enabled durability")
	}
	// Two identical non-durable builds agree on total traffic...
	if am, bm := a.c.net.TotalMessages(), b.c.net.TotalMessages(); am != bm {
		t.Fatalf("identical builds disagree on messages: %d vs %d", am, bm)
	}
	// ...and a durable build charges extra only after construction
	// (builds are folded into checkpoints, not WAL-logged).
	d := buildFixture(t, 8, 2, 906, true)
	if am, dm := a.c.net.TotalMessages(), d.c.net.TotalMessages(); am != dm {
		t.Fatalf("durable build charged %d messages during construction, non-durable %d — bulk builds must be WAL-free", dm, am)
	}
	na, _ := a.oned.Insert(distinctKeys(xrand.New(42), 301)[300], a.c.HostAt(0))
	nd, _ := d.oned.Insert(distinctKeys(xrand.New(42), 301)[300], d.c.HostAt(0))
	if na != nd {
		t.Fatalf("per-op hop counts diverged: %d vs %d (durability I/O must not bill the op)", na, nd)
	}
	if am, dm := a.c.net.TotalMessages(), d.c.net.TotalMessages(); dm <= am {
		t.Fatalf("durable insert charged no WAL traffic: %d vs %d", dm, am)
	}
}

// TestWriterRacesRestartDurable races a striped writer against durable
// crash/Restart cycles: while concurrent insert batches run
// (WriteStripes 4, Replicas 2, Durable), a host is crashed — its disk
// image surviving — and Restarted, the checkpoint+WAL replay and merkle
// reconcile running under the churn write lock while the writer's
// batches drain and resume. Afterwards the structure must be exactly
// consistent, with every batch that reported success fully present, and
// the restarted host's storage must equal its durable image.
func TestWriterRacesRestartDurable(t *testing.T) {
	const hosts, stripes, build, chunk = 8, 4, 512, 32
	keys := distinctKeys(xrand.New(71), build+768)
	c := NewCluster(hosts)
	defer c.Close()
	w, err := NewBlocked(c, keys[:build], Options{Seed: 23, Replicas: 2, Durable: true, WriteStripes: stripes})
	if err != nil {
		t.Fatal(err)
	}
	pool := keys[build:]
	var mu sync.Mutex
	var okChunks [][]uint64
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		for i := 0; i+chunk <= len(pool); i += chunk {
			ck := pool[i : i+chunk]
			if _, err := w.InsertBatch(ck, nil); err == nil {
				mu.Lock()
				okChunks = append(okChunks, ck)
				mu.Unlock()
			} else if !errors.Is(err, ErrHostDown) {
				t.Errorf("insert batch: %v", err)
				return
			}
		}
	}()
	// Crash/Restart cycles racing the writer's whole pool. The writer
	// keeps batching while the victim is down: writes to its replicas
	// are suppressed and recorded as divergence for the restart's
	// merkle reconcile to re-copy.
	victim := c.HostAt(4)
	for round := 0; round < 3; round++ {
		if err := c.Crash(victim); err != nil {
			t.Errorf("durable crash: %v", err)
			break
		}
		if _, err := c.Restart(victim); err != nil {
			t.Errorf("restart: %v", err)
			break
		}
	}
	writerDone.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("after restart cycles: %v", err)
	}
	if got, img := c.net.Storage(victim), c.net.DurableImage(victim); got != img {
		t.Fatalf("restarted storage %d != durable image %d", got, img)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(okChunks) == 0 {
		t.Fatal("no insert batch completed — the race never happened")
	}
	for _, ck := range okChunks {
		rs, err := w.FloorBatch(ck, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rs {
			if !r.Found || r.Key != ck[i] {
				t.Fatalf("committed key %d lost across restart: %+v", ck[i], r)
			}
		}
	}
}
