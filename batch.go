package skipwebs

import (
	"errors"
	"fmt"
)

// Batch execution engine.
//
// Every structure in this package exposes batch variants of its
// operations (FloorBatch, LocateBatch, SearchBatch, InsertBatch, ...)
// that execute N operations concurrently over the cluster instead of one
// at a time. The i-th operation runs on its origin host's worker
// goroutine, dispatched with send-and-continue message passing, so
// operations with distinct origins proceed in parallel while operations
// sharing an origin serialize in order — exactly the many-simultaneous-
// queries regime the paper's congestion measure C(n) is defined over
// (Section 1.1).
//
// Concurrency control is single-writer/many-reader per cluster: read
// batches (queries) hold the cluster's read lock and run fully parallel,
// including across different structures on the same cluster; update
// batches (inserts, deletes) hold the write lock and apply their
// operations one at a time. Query descent touches only immutable routing
// state plus atomic counters, so parallel reads are safe; see the
// concurrency notes in internal/core.
//
// Accounting is identical to the synchronous path: each batched operation
// opens its own sim.Op from its origin host and follows the same
// host-to-host route, so per-operation hop counts and the cluster's
// message/congestion counters match a sequential execution of the same
// workload operation for operation.
//
// Origins: every batch method takes an origins slice designating the host
// each operation starts from. Pass nil to spread operations round-robin
// over all hosts (origin i%H for the i-th operation); otherwise the i-th
// operation uses origins[i%len(origins)], so a single-element slice pins
// the whole batch to one host and a len(N) slice assigns origins
// one-to-one.

// ContainsResult is one answer of a membership batch.
type ContainsResult struct {
	// Found reports whether the exact key/point is stored.
	Found bool
	// Hops is the number of messages the query cost.
	Hops int
}

// KeyRange is one [Lo, Hi] query of a range batch (inclusive bounds).
type KeyRange struct {
	Lo, Hi uint64
}

// RangeResult is one answer of a range batch.
type RangeResult struct {
	// Keys are the stored keys in [Lo, Hi], ascending.
	Keys []uint64
	// Hops is the number of messages the query cost.
	Hops int
}

// checkOrigins validates an origins slice: every origin must be a live
// host (departed hosts issue no operations).
func (c *Cluster) checkOrigins(origins []HostID) error {
	for _, o := range origins {
		if !c.net.Alive(o) {
			return fmt.Errorf("skipwebs: origin host %d is not a live host", o)
		}
	}
	return nil
}

// originAt resolves the origin of the i-th operation of a batch. The nil
// default spreads operations round-robin over the live hosts, so batches
// keep working across host churn.
func (c *Cluster) originAt(origins []HostID, i int) HostID {
	if len(origins) == 0 {
		return c.net.LiveAt(i % c.net.LiveHosts())
	}
	return origins[i%len(origins)]
}

// runReadBatch executes one query per element of qs concurrently on the
// origin hosts' workers, under the cluster's read lock. All queries run
// even when some fail; the returned error joins the per-operation errors.
func runReadBatch[Q, R any](c *Cluster, qs []Q, origins []HostID, do func(q Q, origin HostID) (R, error)) ([]R, error) {
	out := make([]R, len(qs))
	errs := make([]error, len(qs))
	// Origin validation and the worker pool's lazy start both read the
	// network's host set, which churn (Join/Leave, write lock) mutates —
	// they must run under the lock, which also closes the window between
	// "origin checked live" and "origin's mailbox still open".
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.checkOrigins(origins); err != nil {
		return nil, err
	}
	if len(qs) == 0 {
		return out, nil
	}
	cl := c.cluster()
	cl.RunBatch(len(qs),
		func(i int) HostID { return c.originAt(origins, i) },
		func(i int) {
			origin := c.originAt(origins, i)
			out[i], errs[i] = do(qs[i], origin)
		})
	return out, errors.Join(errs...)
}

// runInsertBatchKeys is runWriteBatch specialized for uint64-keyed
// inserts with a sorted-run fast path. Operations still apply strictly
// in input order (single writer), but maximal consecutive stretches that
// share an origin and carry strictly ascending keys are dispatched to
// the origin's worker as one run instead of one rendezvous per
// operation, and executed through the structure's run inserter, which
// shares the uncharged parts of consecutive descents (hyperlink
// resolutions, index splices). Because execution order and every charged
// visit are unchanged, per-operation hop counts and the cluster's
// counters are identical to per-op inserts, counter for counter. Callers
// that want the fast path to engage should group a batch by origin and
// sort each group's keys; the default round-robin origins yield runs of
// length one, which fall back to per-op dispatch.
func runInsertBatchKeys(c *Cluster, keys []uint64, origins []HostID,
	do func(k uint64, origin HostID) (int, error),
	doRun func(ks []uint64, origin HostID, hops []int, errs []error),
) ([]int, error) {
	hops := make([]int, len(keys))
	errs := make([]error, len(keys))
	// Validation must run under the lock; see runReadBatch.
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkOrigins(origins); err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return hops, nil
	}
	cl := c.cluster()
	for i := 0; i < len(keys); {
		origin := c.originAt(origins, i)
		j := i + 1
		for j < len(keys) && keys[j] > keys[j-1] && c.originAt(origins, j) == origin {
			j++
		}
		if j-i > 1 {
			i0, j0 := i, j
			if err := cl.Do(origin, func() { doRun(keys[i0:j0], origin, hops[i0:j0], errs[i0:j0]) }); err != nil {
				// The origin died mid-rendezvous (a crash racing the
				// batch); the whole run failed fast without executing.
				for k := i0; k < j0; k++ {
					errs[k] = err
				}
			}
		} else {
			i0 := i
			if err := cl.Do(origin, func() { hops[i0], errs[i0] = do(keys[i0], origin) }); err != nil {
				errs[i0] = err
			}
		}
		i = j
	}
	return hops, errors.Join(errs...)
}

// runWriteBatch executes one update per element of xs under the cluster's
// write lock. Updates apply one at a time (single writer), each on its
// origin host's worker goroutine; remaining updates still run after one
// fails, and the returned error joins the per-operation errors. The hop
// cost of each update is returned in order.
func runWriteBatch[X any](c *Cluster, xs []X, origins []HostID, do func(x X, origin HostID) (int, error)) ([]int, error) {
	hops := make([]int, len(xs))
	errs := make([]error, len(xs))
	// Validation must run under the lock; see runReadBatch.
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkOrigins(origins); err != nil {
		return nil, err
	}
	if len(xs) == 0 {
		return hops, nil
	}
	cl := c.cluster()
	for i := range xs {
		i := i
		origin := c.originAt(origins, i)
		if err := cl.Do(origin, func() {
			hops[i], errs[i] = do(xs[i], origin)
		}); err != nil {
			errs[i] = err // origin crashed: the op failed fast, typed
		}
	}
	return hops, errors.Join(errs...)
}
