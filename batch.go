package skipwebs

import (
	"errors"
	"fmt"
	"sync"
)

// Batch execution engine.
//
// Every structure in this package exposes batch variants of its
// operations (FloorBatch, LocateBatch, SearchBatch, InsertBatch, ...)
// that execute N operations concurrently over the cluster instead of one
// at a time. The i-th operation runs on its origin host's worker
// goroutine, dispatched with send-and-continue message passing, so
// operations with distinct origins proceed in parallel while operations
// sharing an origin serialize in order — exactly the many-simultaneous-
// queries regime the paper's congestion measure C(n) is defined over
// (Section 1.1).
//
// Concurrency control is single-writer-per-stripe/many-reader: both read
// and write batches hold the cluster's read lock (churn — Join, Leave,
// Crash, Restart — takes the write lock and drains them all), and
// fine-grained exclusion moves to per-key-range write stripes
// (stripes.go). A read descends under its target stripe's read lock and
// runs fully parallel with other reads and with writers to other
// stripes; an update holds its stripe's writer lock, so writers to
// different key ranges of the same structure — and writers to different
// structures on one cluster — proceed concurrently. Unsharded structures
// (Options.WriteStripes <= 1, the default) have exactly one stripe, which
// restores the classic single-writer/many-reader regime per structure.
//
// A write batch dispatches each stripe's operations on a dedicated
// goroutine, preserving input order within the stripe; operations of
// different stripes interleave arbitrarily, which is invisible to both
// answers and accounting because stripes share no structure state.
//
// Accounting is identical to the synchronous path: each batched operation
// opens its own sim.Op from its origin host and follows the same
// host-to-host route, so per-operation hop counts and the cluster's
// message/congestion counters match a sequential execution of the same
// workload operation for operation — including under striping, where
// stripe assignment is a pure function of the key and dispatch is never
// charged.
//
// Origins: every batch method takes an origins slice designating the host
// each operation starts from. Pass nil to spread operations round-robin
// over all hosts (origin i%H for the i-th operation); otherwise the i-th
// operation uses origins[i%len(origins)], so a single-element slice pins
// the whole batch to one host and a len(N) slice assigns origins
// one-to-one.

// ContainsResult is one answer of a membership batch.
type ContainsResult struct {
	// Found reports whether the exact key/point is stored.
	Found bool
	// Hops is the number of messages the query cost.
	Hops int
	// Latency is the query's modeled critical-path latency under the
	// cluster's latency model, in model units. Zero without a model and
	// zero on cache/bloom short-circuits (see FloorResult.Latency).
	Latency int64
}

// KeyRange is one [Lo, Hi] query of a range batch (inclusive bounds).
type KeyRange struct {
	Lo, Hi uint64
}

// RangeResult is one answer of a range batch.
type RangeResult struct {
	// Keys are the stored keys in [Lo, Hi], ascending.
	Keys []uint64
	// Hops is the number of messages the query cost.
	Hops int
	// Latency is the query's modeled critical-path latency under the
	// cluster's latency model, in model units; per-stripe descents in a
	// cross-stripe range sum, mirroring Hops. Zero without a model.
	Latency int64
}

// checkOrigins validates an origins slice: every origin must be a live
// host (departed hosts issue no operations).
func (c *Cluster) checkOrigins(origins []HostID) error {
	for _, o := range origins {
		if !c.net.Alive(o) {
			return fmt.Errorf("skipwebs: origin host %d is not a live host", o)
		}
	}
	return nil
}

// originAt resolves the origin of the i-th operation of a batch. The nil
// default spreads operations round-robin over the live hosts, so batches
// keep working across host churn.
func (c *Cluster) originAt(origins []HostID, i int) HostID {
	if len(origins) == 0 {
		return c.net.LiveAt(i % c.net.LiveHosts())
	}
	return origins[i%len(origins)]
}

// runReadBatch executes one query per element of qs concurrently on the
// origin hosts' workers, under the cluster's read lock. All queries run
// even when some fail; the returned error joins the per-operation errors.
func runReadBatch[Q, R any](c *Cluster, qs []Q, origins []HostID, do func(q Q, origin HostID) (R, error)) ([]R, error) {
	out := make([]R, len(qs))
	errs := make([]error, len(qs))
	// Origin validation and the worker pool's lazy start both read the
	// network's host set, which churn (Join/Leave, write lock) mutates —
	// they must run under the lock, which also closes the window between
	// "origin checked live" and "origin's mailbox still open".
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.checkOrigins(origins); err != nil {
		return nil, err
	}
	if len(qs) == 0 {
		return out, nil
	}
	cl := c.cluster()
	cl.RunBatch(len(qs),
		func(i int) HostID { return c.originAt(origins, i) },
		func(i int) {
			origin := c.originAt(origins, i)
			out[i], errs[i] = do(qs[i], origin)
		})
	return out, errors.Join(errs...)
}

// stripeGroups partitions batch indices by target stripe, preserving
// input order within each group. A nil return means everything routes
// to stripe 0 (the unsharded case) and callers take the direct serial
// path with no grouping allocation.
func stripeGroups[X any](st *stripeSet, xs []X, codeOf func(X) uint64) [][]int {
	if st.n() == 1 {
		return nil
	}
	groups := make([][]int, st.n())
	for i := range xs {
		s := st.of(codeOf(xs[i]))
		groups[s] = append(groups[s], i)
	}
	return groups
}

// runInsertBatchKeys is runWriteBatch specialized for uint64-keyed
// inserts with a sorted-run fast path. Operations still apply strictly
// in input order within their stripe (single writer per stripe), but
// maximal input-consecutive stretches that share an origin and a stripe
// and carry strictly ascending keys are dispatched to the origin's
// worker as one run instead of one rendezvous per operation, and
// executed through the structure's run inserter, which shares the
// uncharged parts of consecutive descents (hyperlink resolutions, index
// splices). Because execution order and every charged visit are
// unchanged, per-operation hop counts and the cluster's counters are
// identical to per-op inserts, counter for counter. Callers that want
// the fast path to engage should group a batch by origin and sort each
// group's keys; the default round-robin origins yield runs of length
// one, which fall back to per-op dispatch. A sorted run whose keys
// straddle a stripe boundary splits at the separator into one run per
// stripe — same accounting, now updating both stripes in parallel.
func runInsertBatchKeys(c *Cluster, keys []uint64, origins []HostID, st *stripeSet,
	do func(k uint64, origin HostID) (int, error),
	doRun func(stripe int, ks []uint64, origin HostID, hops []int, errs []error),
) ([]int, error) {
	hops := make([]int, len(keys))
	errs := make([]error, len(keys))
	// Validation must run under the lock; see runReadBatch. Writers hold
	// the read lock: churn still excludes them (it takes the write
	// lock), while stripes provide writer-writer and writer-reader
	// exclusion at key-range granularity.
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.checkOrigins(origins); err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return hops, nil
	}
	cl := c.cluster()
	runStripe := func(stripe int, idx []int) {
		for a := 0; a < len(idx); {
			i0 := idx[a]
			origin := c.originAt(origins, i0)
			b := a + 1
			for b < len(idx) && idx[b] == idx[b-1]+1 && keys[idx[b]] > keys[idx[b]-1] &&
				c.originAt(origins, idx[b]) == origin {
				b++
			}
			j0 := idx[b-1] + 1
			if j0-i0 > 1 {
				if err := cl.Do(origin, func() { doRun(stripe, keys[i0:j0], origin, hops[i0:j0], errs[i0:j0]) }); err != nil {
					// The origin died mid-rendezvous (a crash racing the
					// batch); the whole run failed fast without executing.
					for k := i0; k < j0; k++ {
						errs[k] = err
					}
				}
			} else {
				if err := cl.Do(origin, func() { hops[i0], errs[i0] = do(keys[i0], origin) }); err != nil {
					errs[i0] = err
				}
			}
			a = b
		}
	}
	groups := stripeGroups(st, keys, func(k uint64) uint64 { return k })
	if groups == nil {
		idx := make([]int, len(keys))
		for i := range idx {
			idx[i] = i
		}
		runStripe(0, idx)
		return hops, errors.Join(errs...)
	}
	var wg sync.WaitGroup
	for s, idx := range groups {
		if len(idx) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idx []int) {
			defer wg.Done()
			runStripe(s, idx)
		}(s, idx)
	}
	wg.Wait()
	return hops, errors.Join(errs...)
}

// runWriteBatch executes one update per element of xs — one dedicated
// dispatcher goroutine per write stripe, each applying its stripe's
// updates strictly in input order on their origin hosts' workers, with
// the per-update stripe writer lock taken inside do (the structures'
// Insert/Delete methods). Remaining updates still run after one fails,
// and the returned error joins the per-operation errors. The hop cost
// of each update is returned in input order. codeOf maps an update to
// its stripe code; it must agree with the routing the structure's
// synchronous path uses, and is a pure function, so the stripe schedule
// of a batch is deterministic.
func runWriteBatch[X any](c *Cluster, xs []X, origins []HostID, st *stripeSet,
	codeOf func(X) uint64, do func(x X, origin HostID) (int, error)) ([]int, error) {
	hops := make([]int, len(xs))
	errs := make([]error, len(xs))
	// Validation must run under the lock; see runInsertBatchKeys for why
	// writers hold the read lock.
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.checkOrigins(origins); err != nil {
		return nil, err
	}
	if len(xs) == 0 {
		return hops, nil
	}
	cl := c.cluster()
	runOne := func(i int) {
		origin := c.originAt(origins, i)
		if err := cl.Do(origin, func() {
			hops[i], errs[i] = do(xs[i], origin)
		}); err != nil {
			errs[i] = err // origin crashed: the op failed fast, typed
		}
	}
	groups := stripeGroups(st, xs, codeOf)
	if groups == nil {
		for i := range xs {
			runOne(i)
		}
		return hops, errors.Join(errs...)
	}
	var wg sync.WaitGroup
	for _, idx := range groups {
		if len(idx) == 0 {
			continue
		}
		wg.Add(1)
		go func(idx []int) {
			defer wg.Done()
			for _, i := range idx {
				runOne(i)
			}
		}(idx)
	}
	wg.Wait()
	return hops, errors.Join(errs...)
}
