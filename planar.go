package skipwebs

import (
	"fmt"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/trapmap"
)

// PlanarPoint is an exact integer point in the plane, |X|,|Y| <= MaxCoord.
type PlanarPoint struct {
	X, Y int64
}

// PlanarSegment is a non-vertical segment with A.X < B.X.
type PlanarSegment struct {
	A, B PlanarPoint
}

// PlanarBounds is the bounding box of a planar subdivision.
type PlanarBounds struct {
	MinX, MinY, MaxX, MaxY int64
}

// MaxPlanarCoord bounds all planar coordinates (exact arithmetic).
const MaxPlanarCoord = trapmap.MaxCoord

// Trapezoid describes the face containing a query point: its bounding
// segments (when not the box edge) and wall abscissas, in the original
// input coordinates where exact (walls fall on endpoint coordinates).
type Trapezoid struct {
	Top, Bottom       PlanarSegment
	HasTop, HasBottom bool
	LeftX, RightX     int64
	// Hops is the number of messages the query cost.
	Hops int
	// Latency is the query's modeled critical-path latency under the
	// cluster's latency model, in model units. Zero without a model and
	// zero on cache hits.
	Latency int64
}

// Planar is a skip-web over a trapezoidal map of non-crossing segments
// (Section 3.3): planar point-location in O(log n) expected messages.
// The structure is static (build + query), matching the paper's
// amortization caveat for trapezoid updates; having no writers, it
// ignores Options.WriteStripes.
type Planar struct {
	c *Cluster
	w *core.Web[*trapmap.Map, trapmap.Segment, trapmap.Point]
	readPath
}

// NewPlanar builds a planar point-location skip-web over pairwise
// disjoint segments in general position (distinct endpoint x
// coordinates, no verticals), all strictly inside bounds.
func NewPlanar(c *Cluster, segments []PlanarSegment, bounds PlanarBounds, opts Options) (*Planar, error) {
	segs := make([]trapmap.Segment, len(segments))
	for i, s := range segments {
		segs[i] = trapmap.Segment{
			A: trapmap.Point{X: s.A.X, Y: s.A.Y},
			B: trapmap.Point{X: s.B.X, Y: s.B.Y},
		}
	}
	ops := core.TrapOps{Bounds: trapmap.Rect{
		MinX: bounds.MinX, MinY: bounds.MinY, MaxX: bounds.MaxX, MaxY: bounds.MaxY,
	}}
	done := c.beginBuild(opts)
	w, err := core.NewWeb[*trapmap.Map, trapmap.Segment, trapmap.Point](
		ops, c.network(), segs, core.Config{Seed: opts.Seed, Replicas: opts.Replicas})
	done()
	if err != nil {
		return nil, fmt.Errorf("skipwebs: %w", err)
	}
	// The segment set is static, so cache epochs are churn-only (nil
	// stripe set); there is no membership query, so no negative bloom.
	p := &Planar{c: c, w: w, readPath: newReadPath(opts, nil, nil)}
	c.attach(p)
	return p, nil
}

// Len returns the number of segments.
func (p *Planar) Len() int { return p.w.Len() }

// NumFaces returns the number of trapezoids in the ground map (3n+1).
func (p *Planar) NumFaces() int { return p.w.GroundStructure().NumTraps() }

// Locate routes a planar point-location query from the given host in
// O(log n) expected messages (Theorem 2 via Lemma 5): one expected-O(1)
// conflict-list hop per level of the hierarchy. The descent is
// allocation-free in steady state (pooled accounting Op, counted-loop
// trapezoid enumeration); only the returned Trapezoid value is
// materialized per call.
func (p *Planar) Locate(q PlanarPoint, origin HostID) (Trapezoid, error) {
	ck := cacheKey{op: opPlanarLocate, code: uint64(q.X), code2: uint64(q.Y)}
	var sum uint64
	if p.rc != nil {
		if v, ok := p.rc.get(origin, ck); ok {
			return v.(Trapezoid), nil
		}
		sum = p.rc.churnNow()
	}
	res, err := p.w.Query(trapmap.Point{X: q.X, Y: q.Y}, origin)
	if err != nil {
		return Trapezoid{}, fmt.Errorf("skipwebs: %w", err)
	}
	g := p.w.GroundStructure()
	t := g.Trap(trapmap.TrapID(res.Range))
	out := Trapezoid{
		HasTop:    t.HasTop,
		HasBottom: t.HasBottom,
		LeftX:     t.L / trapmap.Scale,
		RightX:    t.R / trapmap.Scale,
		Hops:      res.Hops,
		Latency:   res.Latency,
	}
	if t.HasTop {
		out.Top = PlanarSegment{
			A: PlanarPoint{X: t.Top.A.X / trapmap.Scale, Y: t.Top.A.Y / trapmap.Scale},
			B: PlanarPoint{X: t.Top.B.X / trapmap.Scale, Y: t.Top.B.Y / trapmap.Scale},
		}
	}
	if t.HasBottom {
		out.Bottom = PlanarSegment{
			A: PlanarPoint{X: t.Bottom.A.X / trapmap.Scale, Y: t.Bottom.A.Y / trapmap.Scale},
			B: PlanarPoint{X: t.Bottom.B.X / trapmap.Scale, Y: t.Bottom.B.Y / trapmap.Scale},
		}
	}
	if p.rc != nil {
		memo := out
		memo.Hops, memo.Latency = 0, 0
		p.rc.put(origin, ck, memo, 0, 0, sum)
	}
	return out, nil
}

// LocateBatch answers one planar point-location query per element of qs
// concurrently (see the batch engine notes in batch.go). Results are in
// input order. The structure is static, so there is no update batch.
func (p *Planar) LocateBatch(qs []PlanarPoint, origins []HostID) ([]Trapezoid, error) {
	return runReadBatch(p.c, qs, origins, p.Locate)
}

// rehome and rebalance are the churn hooks Cluster.Leave and
// Cluster.Join drive. The trapezoid set is static but its placement is
// not: faces migrate between hosts with their conflict-list hyperlinks,
// one message per storage unit moved.
func (p *Planar) rehome(from HostID, op *sim.Op) {
	p.bumpChurn()
	p.w.Rehome(from, op)
}
func (p *Planar) rebalance(onto HostID, op *sim.Op) {
	p.bumpChurn()
	p.w.Rebalance(onto, op)
}

// repair is the crash-recovery hook Cluster.Crash drives: re-replicate
// every under-replicated trapezoid from its surviving live replicas.
func (p *Planar) repair(op *sim.Op) error {
	p.bumpChurn()
	return p.w.Repair(op)
}

// restart is the durable-recovery hook Cluster.Restart drives: merkle-
// reconcile the restarted host's ranges against one live peer each.
func (p *Planar) restart(h HostID, op *sim.Op) int {
	p.bumpChurn()
	return p.w.RestartHost(h, op)
}

func (p *Planar) kind() string { return "planar" }

// CheckConsistent verifies the planar web's invariants: every trapezoid
// on a live host, conflict-list hyperlinks matching recomputation, and
// per-level counts that add up. Cost: O(n log n) local work, no
// messages.
func (p *Planar) CheckConsistent() error { return p.w.CheckInvariants() }
