// Kiosk: the paper's motivating location-based service — "a
// nearest-neighbor query in a two-dimensional point set could reveal the
// closest open computer kiosk or empty parking space on a college
// campus" (Section 1).
//
// Campus kiosks are points on a 2^20 x 2^20 grid stored in a quadtree
// skip-web across 128 hosts; students query from arbitrary hosts.
package main

import (
	"fmt"
	"log"

	skipwebs "github.com/skipwebs/skipwebs"
)

func main() {
	cluster := skipwebs.NewCluster(128)

	// Kiosks clustered around a few campus buildings plus scattered
	// outdoor units — clustered inputs are exactly where plain quadtrees
	// degenerate and skip-web routing stays logarithmic.
	var kiosks []skipwebs.Point
	buildings := [][2]uint32{{100000, 200000}, {600000, 650000}, {900000, 120000}}
	for _, b := range buildings {
		for i := uint32(0); i < 40; i++ {
			kiosks = append(kiosks, skipwebs.Point{b[0] + i*17, b[1] + (i*i)%291})
		}
	}
	for i := uint32(0); i < 80; i++ {
		kiosks = append(kiosks, skipwebs.Point{(i*92821 + 7) % (1 << 20), (i*68917 + 3) % (1 << 20)})
	}

	web, err := skipwebs.NewPoints(cluster, 2, kiosks, skipwebs.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campus: %d kiosks on %d hosts; ground quadtree depth %d\n\n",
		web.Len(), cluster.Hosts(), web.TreeDepth())

	students := []skipwebs.Point{
		{100500, 200100}, // next to building A
		{500000, 500000}, // middle of the quad
		{1 << 19, 1},     // south edge
	}
	for _, s := range students {
		nearest, hops, err := web.Nearest(s, skipwebs.HostID(s[0]%128))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("student at %-18v nearest kiosk %-18v (%d messages)\n",
			fmt.Sprint(s), fmt.Sprint(nearest), hops)
	}

	// A kiosk comes online, another goes down for maintenance.
	if _, err := web.Insert(skipwebs.Point{500001, 499999}, 11); err != nil {
		log.Fatal(err)
	}
	nearest, _, _ := web.Nearest(skipwebs.Point{500000, 500000}, 30)
	fmt.Printf("\nafter installing (500001,499999): nearest to quad center = %v\n", nearest)
	if _, err := web.Delete(kiosks[0], 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kiosk %v decommissioned; %d remain\n", kiosks[0], web.Len())
}
