// ISBN: the paper's motivating prefix query — "a prefix query for ISBN
// numbers in a book database could return all titles by a certain
// publisher" (Section 1).
//
// ISBN-13 numbers share a prefix per registration group and publisher;
// the trie skip-web routes a prefix query to the publisher's subtree in
// O(log n) expected messages, then enumerates the titles.
package main

import (
	"fmt"
	"log"

	skipwebs "github.com/skipwebs/skipwebs"
)

func main() {
	cluster := skipwebs.NewCluster(64)

	// publisher prefix -> some ISBNs (digits only).
	catalog := map[string][]string{
		"9780262": {"9780262033848", "9780262046305", "9780262533058"}, // MIT Press
		"9780521": {"9780521424264", "9780521880688", "9780521670531"}, // Cambridge
		"9781492": {"9781492077213", "9781492052593"},                  // O'Reilly
		"9783540": {"9783540779735", "9783540653677", "9783540431077"}, // Springer
	}
	var isbns []string
	for _, list := range catalog {
		isbns = append(isbns, list...)
	}

	web, err := skipwebs.NewStrings(cluster, isbns, skipwebs.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("book database: %d ISBNs on %d hosts\n\n", web.Len(), cluster.Hosts())

	// "All titles by MIT Press": a prefix query.
	books, hops, err := web.PrefixSearch("9780262", 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("publisher 9780262 (%d messages):\n", hops)
	for _, b := range books {
		fmt.Printf("  %s\n", b)
	}

	// Exact lookup.
	ok, hops, err := web.Contains("9780521880688", 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlookup 9780521880688: found=%v (%d messages)\n", ok, hops)

	// A new title is published; a prefix query sees it immediately.
	if _, err := web.Insert("9780262048630", 4); err != nil {
		log.Fatal(err)
	}
	books, _, _ = web.PrefixSearch("9780262", 0, 9)
	fmt.Printf("after publishing 9780262048630: MIT Press has %d titles\n", len(books))

	// Unknown publisher: the search terminates at the deepest shared
	// prefix with no results.
	books, hops, _ = web.PrefixSearch("9789999", 0, 21)
	fmt.Printf("publisher 9789999: %d titles (%d messages)\n", len(books), hops)
}
