// GIS: the paper's motivating point-location query — a trapezoidal map
// "as would be created by a campus or city map in a geographic
// information system" (Section 1.3), stored as a skip-web.
//
// Walls and paths are disjoint segments; locating a visitor's position
// returns the face of the subdivision they stand in, in O(log n)
// expected messages (Lemma 5 + Theorem 2).
package main

import (
	"fmt"
	"log"

	skipwebs "github.com/skipwebs/skipwebs"
)

func main() {
	cluster := skipwebs.NewCluster(32)
	bounds := skipwebs.PlanarBounds{MinX: -10000, MinY: -10000, MaxX: 10000, MaxY: 10000}

	// A stylized campus: building walls and footpaths (pairwise disjoint,
	// distinct endpoint x-coordinates, no verticals).
	campus := []skipwebs.PlanarSegment{
		{A: skipwebs.PlanarPoint{X: -9000, Y: 5000}, B: skipwebs.PlanarPoint{X: -2001, Y: 5200}},  // library north wall
		{A: skipwebs.PlanarPoint{X: -8999, Y: 3000}, B: skipwebs.PlanarPoint{X: -2000, Y: 3100}},  // library south wall
		{A: skipwebs.PlanarPoint{X: 1001, Y: 6000}, B: skipwebs.PlanarPoint{X: 8999, Y: 6400}},    // lab north wall
		{A: skipwebs.PlanarPoint{X: 1000, Y: 4000}, B: skipwebs.PlanarPoint{X: 9000, Y: 4300}},    // lab south wall
		{A: skipwebs.PlanarPoint{X: -7000, Y: -2000}, B: skipwebs.PlanarPoint{X: 7001, Y: -1500}}, // main footpath
		{A: skipwebs.PlanarPoint{X: -6000, Y: -6000}, B: skipwebs.PlanarPoint{X: 6001, Y: -5800}}, // south promenade
		{A: skipwebs.PlanarPoint{X: -1999, Y: 800}, B: skipwebs.PlanarPoint{X: 999, Y: 900}},      // connector
	}

	web, err := skipwebs.NewPlanar(cluster, campus, bounds, skipwebs.Options{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campus map: %d segments, %d faces (3n+1), %d hosts\n\n",
		web.Len(), web.NumFaces(), cluster.Hosts())

	visitors := []struct {
		name string
		at   skipwebs.PlanarPoint
	}{
		{"inside the library", skipwebs.PlanarPoint{X: -5000, Y: 4000}},
		{"inside the lab", skipwebs.PlanarPoint{X: 5000, Y: 5500}},
		{"between the paths", skipwebs.PlanarPoint{X: 0, Y: -4000}},
		{"open sky", skipwebs.PlanarPoint{X: 0, Y: 9000}},
	}
	for _, v := range visitors {
		face, err := web.Locate(v.at, skipwebs.HostID(uint64(v.at.X+10000)%32))
		if err != nil {
			log.Fatal(err)
		}
		top := "the map boundary"
		if face.HasTop {
			top = fmt.Sprintf("segment %v-%v", face.Top.A, face.Top.B)
		}
		bottom := "the map boundary"
		if face.HasBottom {
			bottom = fmt.Sprintf("segment %v-%v", face.Bottom.A, face.Bottom.B)
		}
		fmt.Printf("%-20s -> face x=[%d,%d] below %s above %s (%d messages)\n",
			v.name, face.LeftX, face.RightX, top, bottom, face.Hops)
	}
}
