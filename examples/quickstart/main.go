// Quickstart: build a one-dimensional skip-web over a distributed sorted
// set, run nearest-neighbor queries, and inspect the message accounting.
package main

import (
	"fmt"
	"log"

	skipwebs "github.com/skipwebs/skipwebs"
)

func main() {
	// A cluster of 64 hosts; every cross-host hop is counted.
	cluster := skipwebs.NewCluster(64)

	// Store the squares of 1..512 — any distinct uint64 keys work.
	keys := make([]uint64, 0, 512)
	for i := uint64(1); i <= 512; i++ {
		keys = append(keys, i*i)
	}

	// The blocked skip-web: with per-host memory M = Θ(log n), queries
	// take O(log n / log log n) expected messages (Theorem 2).
	web, err := skipwebs.NewBlocked(cluster, keys, skipwebs.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d keys on %d hosts (M = %d)\n\n", web.Len(), cluster.Hosts(), web.M())

	// Floor queries ("nearest neighbor below") from various hosts.
	for _, q := range []uint64{2, 1000, 123456, 300000} {
		res, err := web.Floor(q, skipwebs.HostID(q%64))
		if err != nil {
			log.Fatal(err)
		}
		if res.Found {
			fmt.Printf("floor(%6d) = %6d   (%d messages)\n", q, res.Key, res.Hops)
		} else {
			fmt.Printf("floor(%6d) = none     (%d messages)\n", q, res.Hops)
		}
	}

	// Dynamic updates: O(log n / log log n) expected messages each.
	hops, err := web.Insert(123457, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninsert(123457) cost %d messages\n", hops)
	res, _ := web.Floor(123460, 9)
	fmt.Printf("floor(123460) = %d after insert\n", res.Key)
	if _, err := web.Delete(123457, 5); err != nil {
		log.Fatal(err)
	}

	// Range queries: all keys in [10000, 12000].
	inRange, hops, err := web.Range(10000, 12000, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range [10000,12000] -> %v (%d messages)\n", inRange, hops)

	// Batch queries: N floors execute concurrently on per-host workers
	// (nil origins spreads them round-robin over the hosts), with the
	// same per-query message accounting as the loop above.
	defer cluster.Close()
	batch, err := web.FloorBatch([]uint64{4, 40, 400, 4000, 40000}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbatched floors:")
	for _, r := range batch {
		fmt.Printf("  %6d found=%-5v (%d messages)\n", r.Key, r.Found, r.Hops)
	}

	// Cluster-wide accounting.
	s := cluster.Stats()
	fmt.Printf("\ncluster: %d ops, %d messages, mean storage %.1f units/host, max %d\n",
		s.TotalOps, s.TotalMessages, s.MeanStorage, s.MaxStorage)
}
