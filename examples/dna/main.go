// DNA: the paper motivates "DNA databases ... and approximate searches"
// (Section 1). A trie skip-web over fixed-alphabet {A,C,G,T} reads
// supports exact lookup and longest-shared-prefix search — and stays
// efficient even though genomic reads share long prefixes, the regime
// where a plain distributed trie would route through Θ(n) hosts.
package main

import (
	"fmt"
	"log"
	"strings"

	skipwebs "github.com/skipwebs/skipwebs"
)

func main() {
	cluster := skipwebs.NewCluster(128)

	// Synthetic reads: a conserved promoter region followed by variable
	// tails, plus a pathological repeat family (AAAA...).
	var reads []string
	promoter := "ACGTACGTGGCC"
	tails := []string{"A", "C", "G", "T", "AC", "AG", "CT", "GA", "TT", "CG"}
	for _, t1 := range tails {
		for _, t2 := range tails {
			reads = append(reads, promoter+t1+"TT"+t2)
		}
	}
	for i := 4; i <= 40; i++ {
		reads = append(reads, strings.Repeat("A", i)) // repeat family
	}

	web, err := skipwebs.NewStrings(cluster, dedupe(reads), skipwebs.Options{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read index: %d reads on %d hosts; trie depth %d\n\n",
		web.Len(), cluster.Hosts(), web.TrieDepth())

	// Exact lookup of a read.
	ok, hops, err := web.Contains(promoter+"AC"+"TT"+"CG", 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact read lookup: found=%v (%d messages)\n", ok, hops)

	// Longest-shared-prefix search: where does a query sequence diverge
	// from the database? (The paper: "finding the first place where a
	// query substring differs".)
	query := promoter + "AXXXX"
	loc, err := web.Search(query, 41)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q diverges after %q (%d shared bases, %d messages)\n",
		query, loc.Locus, len(loc.Locus), loc.Hops)

	// All reads in the repeat family of length >= 20.
	family, hops, err := web.PrefixSearch(strings.Repeat("A", 20), 0, 77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat family >= 20bp: %d reads (%d messages)\n", len(family), hops)

	// New sequencing run adds reads on the fly.
	if _, err := web.Insert(promoter+"GGTTGG", 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after new run: %d reads indexed\n", web.Len())
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
