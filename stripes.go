package skipwebs

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// Write striping.
//
// Options.WriteStripes S > 1 partitions a structure into S independent
// sub-engines over contiguous ranges of its key-code space, each with
// its own seed-split PRNG, its own scratch buffers, and its own
// reader/writer lock — single writer per stripe, many readers. Write
// batches dispatch each stripe's operations on a dedicated goroutine
// (batch.go), so updates to different key ranges proceed in parallel
// while updates within one range keep their strict input order.
//
// Stripe assignment is a pure function of the key: at construction the
// build keys are sorted by their 64-bit stripe code (the key itself for
// the one-dimensional webs, the Morton code for point sets, the
// big-endian first eight bytes for strings) and cut into S rank-balanced
// chunks; the chunk boundaries become separator codes that never change
// afterwards. Routing an operation is a binary search over the
// separators — no shared state, no coordination messages, and therefore
// no accounting impact: a concurrently executed striped batch charges
// exactly the messages of a serial replay of the same operations on the
// same striped structure, stripe isolation making the two executions
// identical operation for operation.
//
// S <= 1 (the default) builds exactly one engine from the unmodified
// key slice with the unmodified seed — the pre-striping code path,
// bit-identical to it in placement and accounting.

// stripeSet is the routing table and lock array shared by a striped
// structure's sub-engines. seps holds the S-1 separator codes in
// ascending order; stripe i owns codes in [seps[i-1], seps[i]) with
// virtual sentinels seps[-1] = 0 and seps[S-1] = 2^64.
type stripeSet struct {
	seps  []uint64
	locks []sync.RWMutex
	// writes counts writer-lock acquisitions per stripe — the
	// observable the stripe-parallelism test asserts on instead of
	// wall-clock speedup.
	writes []atomic.Int64
	// onWrite, when non-nil, is invoked after each writer-lock
	// acquisition with the stripe index. Tests install it (before any
	// concurrent use) to prove that distinct stripes hold their writer
	// locks simultaneously.
	onWrite func(stripe int)
}

// newStripeSet builds the routing table for the given sorted stripe
// codes (duplicates allowed) cut into up to `want` rank-balanced
// stripes. Ties never straddle a boundary — equal codes must route to
// one stripe — so the realized stripe count can be lower than requested
// when the code distribution is degenerate; every realized stripe is
// non-empty at build time.
func newStripeSet(sortedCodes []uint64, want int) *stripeSet {
	var seps []uint64
	if want > len(sortedCodes) {
		want = len(sortedCodes)
	}
	for i := 1; i < want; i++ {
		pos := i * len(sortedCodes) / want
		for pos < len(sortedCodes) && pos > 0 && sortedCodes[pos] == sortedCodes[pos-1] {
			pos++ // slide past a tie: equal codes stay in the lower stripe
		}
		if pos >= len(sortedCodes) {
			break
		}
		sep := sortedCodes[pos]
		if len(seps) > 0 && sep <= seps[len(seps)-1] {
			continue
		}
		seps = append(seps, sep)
	}
	n := len(seps) + 1
	return &stripeSet{
		seps:   seps,
		locks:  make([]sync.RWMutex, n),
		writes: make([]atomic.Int64, n),
	}
}

// n returns the stripe count (>= 1).
func (ss *stripeSet) n() int { return len(ss.seps) + 1 }

// of routes a stripe code to its owning stripe: the number of
// separators <= code. A pure function of (code, frozen separators), so
// concurrent callers need no synchronization and every execution of the
// same workload routes identically.
func (ss *stripeSet) of(code uint64) int {
	if len(ss.seps) == 0 {
		return 0
	}
	return sort.Search(len(ss.seps), func(i int) bool { return ss.seps[i] > code })
}

// rlock/runlock bracket a reader's descent into stripe i. Readers of
// different stripes — and of the same stripe — run fully in parallel;
// only a writer to the same stripe excludes them.
func (ss *stripeSet) rlock(i int)   { ss.locks[i].RLock() }
func (ss *stripeSet) runlock(i int) { ss.locks[i].RUnlock() }

// wlock/wunlock bracket a writer's update to stripe i: single writer
// per stripe, excluding that stripe's readers and nothing else.
func (ss *stripeSet) wlock(i int) {
	ss.locks[i].Lock()
	ss.writes[i].Add(1)
	if ss.onWrite != nil {
		ss.onWrite(i)
	}
}
func (ss *stripeSet) wunlock(i int) { ss.locks[i].Unlock() }

// writeCount returns the writer-lock acquisitions stripe i has seen.
func (ss *stripeSet) writeCount(i int) int64 { return ss.writes[i].Load() }

// stripeSeed derives the PRNG seed of stripe i: the cluster seed itself
// for a single-stripe (unsharded) structure — keeping the default
// configuration bit-identical to the pre-striping build — and a
// deterministic SplitMix64 substream of the cluster seed otherwise, so
// concurrent stripe writers never share a generator yet placement
// remains exactly reproducible from (seed, stripe).
func stripeSeed(seed uint64, i, stripes int) uint64 {
	if stripes <= 1 {
		return seed
	}
	return xrand.Substream(seed, i)
}

// splitKeysByStripe sorts uint64 keys ascending, builds the stripe
// routing table for up to `want` stripes, and returns the per-stripe
// key chunks. want <= 1 returns the single-stripe table with the input
// slice untouched — the exact pre-striping build input.
func splitKeysByStripe(keys []uint64, want int) (*stripeSet, [][]uint64) {
	if want <= 1 || len(keys) <= 1 {
		return newStripeSet(nil, 1), [][]uint64{keys}
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ss := newStripeSet(sorted, want)
	parts := make([][]uint64, ss.n())
	start := 0
	for i := 0; i < ss.n(); i++ {
		end := start
		for end < len(sorted) && ss.of(sorted[end]) == i {
			end++
		}
		parts[i] = sorted[start:end]
		start = end
	}
	return ss, parts
}

// stringCode maps a string to its 64-bit stripe code: the big-endian
// first eight bytes, zero-padded. Order-preserving as a coarsening —
// a < b implies stringCode(a) <= stringCode(b), and a strict code
// inequality implies the same string inequality — so rank-balanced code
// separators respect lexicographic order and per-stripe sorted output
// concatenates sorted.
func stringCode(s string) uint64 {
	var code uint64
	for i := 0; i < 8; i++ {
		code <<= 8
		if i < len(s) {
			code |= uint64(s[i])
		}
	}
	return code
}

// splitStringsByStripe is splitKeysByStripe for string keys, cutting on
// stringCode. Strings sharing a first-eight-byte prefix share a code and
// therefore a stripe.
func splitStringsByStripe(keys []string, want int) (*stripeSet, [][]string) {
	if want <= 1 || len(keys) <= 1 {
		return newStripeSet(nil, 1), [][]string{keys}
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	codes := make([]uint64, len(sorted))
	for i, s := range sorted {
		codes[i] = stringCode(s)
	}
	ss := newStripeSet(codes, want)
	parts := make([][]string, ss.n())
	start := 0
	for i := 0; i < ss.n(); i++ {
		end := start
		for end < len(sorted) && ss.of(codes[end]) == i {
			end++
		}
		parts[i] = sorted[start:end]
		start = end
	}
	return ss, parts
}
