// Allocation benchmarks for the hot paths: the point-query descent and
// the update climb. These pin the allocation-free descent guarantees
// documented in README.md's Performance section — `go test -bench=Allocs`
// shows allocs/op alongside the paper's msgs/op metric, and CI's bench
// smoke job keeps them from regressing silently.
package skipwebs

import (
	"testing"

	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// BenchmarkQueryAllocs measures per-query heap allocations on the point
// query descent of each structure. The Blocked and OneDim descents are
// allocation-free in steady state (pooled sim.Op, iterator-based range
// enumeration, binary-search local search); tree-backed descents allocate
// only what their answers require.
func BenchmarkQueryAllocs(b *testing.B) {
	b.Run("blocked-floor", func(b *testing.B) {
		c := NewCluster(256)
		w, err := NewBlocked(c, benchKeys(0), Options{Seed: 17})
		if err != nil {
			b.Fatal(err)
		}
		rng := xrand.New(18)
		total := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := w.Floor(rng.Uint64n(1<<40), HostID(rng.Intn(256)))
			if err != nil {
				b.Fatal(err)
			}
			total += r.Hops
		}
		b.ReportMetric(float64(total)/float64(b.N), "msgs/query")
	})
	b.Run("onedim-floor", func(b *testing.B) {
		c := NewCluster(256)
		w, err := NewOneDim(c, benchKeys(0), Options{Seed: 17})
		if err != nil {
			b.Fatal(err)
		}
		rng := xrand.New(18)
		total := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := w.Floor(rng.Uint64n(1<<40), HostID(rng.Intn(256)))
			if err != nil {
				b.Fatal(err)
			}
			total += r.Hops
		}
		b.ReportMetric(float64(total)/float64(b.N), "msgs/query")
	})
	b.Run("points-locate", func(b *testing.B) {
		c := NewCluster(256)
		rng := xrand.New(19)
		raw := experiments.UniformPoints(rng, 2, 2048, 1<<30)
		pts := make([]Point, len(raw))
		for i, p := range raw {
			pts[i] = Point(p)
		}
		w, err := NewPoints(c, 2, pts, Options{Seed: 17})
		if err != nil {
			b.Fatal(err)
		}
		// Pre-generate queries: the Point composite literal would otherwise
		// be charged to the descent.
		qs := make([]Point, 4096)
		for i := range qs {
			qs[i] = Point{uint32(rng.Uint64n(1 << 30)), uint32(rng.Uint64n(1 << 30))}
		}
		total := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			loc, err := w.Locate(qs[i%len(qs)], HostID(i%256))
			if err != nil {
				b.Fatal(err)
			}
			total += loc.Hops
		}
		b.ReportMetric(float64(total)/float64(b.N), "msgs/query")
	})
	b.Run("strings-search", func(b *testing.B) {
		c := NewCluster(256)
		rng := xrand.New(20)
		keys := experiments.UniformStrings(rng, 2048, "acgt", 6, 24)
		w, err := NewStrings(c, keys, Options{Seed: 17})
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			loc, err := w.Search(keys[i%len(keys)], HostID(i%256))
			if err != nil {
				b.Fatal(err)
			}
			total += loc.Hops
		}
		b.ReportMetric(float64(total)/float64(b.N), "msgs/query")
	})
}

// BenchmarkInsertAllocs measures per-update heap allocations on the
// insert climb (query descent + structural change + hyperlink rewiring).
// Updates still allocate where ownership demands it (stored hyperlink
// slices, level growth), but all per-level scratch is pooled.
func BenchmarkInsertAllocs(b *testing.B) {
	b.Run("blocked", func(b *testing.B) {
		c := NewCluster(256)
		keys := benchKeys(b.N)
		w, err := NewBlocked(c, keys[:benchN], Options{Seed: 23})
		if err != nil {
			b.Fatal(err)
		}
		rng := xrand.New(24)
		total := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h, err := w.Insert(keys[benchN+i], HostID(rng.Intn(256)))
			if err != nil {
				b.Fatal(err)
			}
			total += h
		}
		b.ReportMetric(float64(total)/float64(b.N), "msgs/insert")
	})
	b.Run("blocked-ascending", func(b *testing.B) {
		// The sorted-stream regime of the -mode=bench update row: fresh
		// keys above every stored key, the log-structured fast case.
		c := NewCluster(256)
		keys := benchKeys(0)
		w, err := NewBlocked(c, keys, Options{Seed: 23})
		if err != nil {
			b.Fatal(err)
		}
		next := uint64(1) << 41
		total := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			next++
			h, err := w.Insert(next, HostID(i%256))
			if err != nil {
				b.Fatal(err)
			}
			total += h
		}
		b.ReportMetric(float64(total)/float64(b.N), "msgs/insert")
	})
	b.Run("onedim", func(b *testing.B) {
		c := NewCluster(256)
		keys := benchKeys(b.N)
		w, err := NewOneDim(c, keys[:benchN], Options{Seed: 23})
		if err != nil {
			b.Fatal(err)
		}
		rng := xrand.New(24)
		total := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h, err := w.Insert(keys[benchN+i], HostID(rng.Intn(256)))
			if err != nil {
				b.Fatal(err)
			}
			total += h
		}
		b.ReportMetric(float64(total)/float64(b.N), "msgs/insert")
	})
}
