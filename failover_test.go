package skipwebs

import (
	"errors"
	"sync"
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

// failoverFixture builds all six structures with the given replication
// factor on a fresh cluster, over deterministic data derived from seed.
type failoverFixture struct {
	c      *Cluster
	keys   []uint64
	pts    []Point
	strs   []string
	oned   *OneDim
	block  *Blocked
	bucket *Bucketed
	points *Points
	strw   *Strings
	planar *Planar
}

func buildFailoverFixture(t *testing.T, hosts, replicas int, seed uint64) *failoverFixture {
	return buildFixture(t, hosts, replicas, seed, false)
}

// buildFixture is the shared builder; durable additionally enables the
// cluster-wide WAL + checkpoint model (see durability_test.go).
func buildFixture(t *testing.T, hosts, replicas int, seed uint64, durable bool) *failoverFixture {
	t.Helper()
	f := &failoverFixture{c: NewCluster(hosts)}
	rng := xrand.New(seed)
	f.keys = distinctKeys(rng, 300)
	opts := func(d uint64) Options { return Options{Seed: seed + d, Replicas: replicas, Durable: durable} }
	var err error
	if f.oned, err = NewOneDim(f.c, f.keys, opts(0)); err != nil {
		t.Fatal(err)
	}
	if f.block, err = NewBlocked(f.c, f.keys, opts(1)); err != nil {
		t.Fatal(err)
	}
	if f.bucket, err = NewBucketed(f.c, f.keys, opts(2)); err != nil {
		t.Fatal(err)
	}
	f.pts = make([]Point, 120)
	seen := map[[2]uint32]bool{}
	for i := range f.pts {
		for {
			p := [2]uint32{uint32(rng.Uint64n(1 << 20)), uint32(rng.Uint64n(1 << 20))}
			if !seen[p] {
				seen[p] = true
				f.pts[i] = Point{p[0], p[1]}
				break
			}
		}
	}
	if f.points, err = NewPoints(f.c, 2, f.pts, opts(3)); err != nil {
		t.Fatal(err)
	}
	alpha := []byte("acgt")
	seenS := map[string]bool{}
	for len(f.strs) < 120 {
		n := 4 + int(rng.Uint64n(12))
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Uint64n(4)]
		}
		if !seenS[string(b)] {
			seenS[string(b)] = true
			f.strs = append(f.strs, string(b))
		}
	}
	if f.strw, err = NewStrings(f.c, f.strs, opts(4)); err != nil {
		t.Fatal(err)
	}
	segs := []PlanarSegment{
		{A: PlanarPoint{X: -800, Y: 100}, B: PlanarPoint{X: -200, Y: 150}},
		{A: PlanarPoint{X: -150, Y: -300}, B: PlanarPoint{X: 350, Y: -250}},
		{A: PlanarPoint{X: 401, Y: 500}, B: PlanarPoint{X: 903, Y: 450}},
		{A: PlanarPoint{X: -701, Y: -600}, B: PlanarPoint{X: 99, Y: -650}},
	}
	if f.planar, err = NewPlanar(f.c, segs,
		PlanarBounds{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000}, opts(5)); err != nil {
		t.Fatal(err)
	}
	return f
}

// queryAll runs the same deterministic query workload against the
// fixture and returns a transcript of every answer.
func (f *failoverFixture) queryAll(t *testing.T, qseed uint64) []any {
	t.Helper()
	rng := xrand.New(qseed)
	var out []any
	for i := 0; i < 150; i++ {
		origin := f.c.HostAt(int(rng.Uint64n(64)))
		fr, err := f.oned.Floor(rng.Uint64n(1<<40), origin)
		if err != nil {
			t.Fatalf("onedim floor: %v", err)
		}
		out = append(out, fr.Key, fr.Found)
		br, err := f.block.Floor(rng.Uint64n(1<<40), origin)
		if err != nil {
			t.Fatalf("blocked floor: %v", err)
		}
		out = append(out, br.Key, br.Found)
		ur, err := f.bucket.Floor(rng.Uint64n(1<<40), origin)
		if err != nil {
			t.Fatalf("bucketed floor: %v", err)
		}
		out = append(out, ur.Key, ur.Found)
		q := Point{uint32(rng.Uint64n(1 << 20)), uint32(rng.Uint64n(1 << 20))}
		pl, err := f.points.Locate(q, origin)
		if err != nil {
			t.Fatalf("points locate: %v", err)
		}
		out = append(out, pl.CellPrefix, pl.CellBits, pl.Leaf)
		sl, err := f.strw.Search(f.strs[int(rng.Uint64n(uint64(len(f.strs))))], origin)
		if err != nil {
			t.Fatalf("strings search: %v", err)
		}
		out = append(out, sl.Locus, sl.Exact)
		pp := PlanarPoint{X: int64(rng.Uint64n(1900)) - 950, Y: int64(rng.Uint64n(1900)) - 950}
		tr, err := f.planar.Locate(pp, origin)
		if err != nil {
			t.Fatalf("planar locate: %v", err)
		}
		out = append(out, tr.LeftX, tr.RightX, tr.HasTop, tr.HasBottom)
	}
	return out
}

// checkAllKeys asserts zero lost keys across every dynamic structure.
func (f *failoverFixture) checkAllKeys(t *testing.T, stage string) {
	t.Helper()
	for i, k := range f.keys {
		if ok, _, err := f.oned.Contains(k, f.c.HostAt(i)); err != nil || !ok {
			t.Fatalf("%s: onedim lost key %d: %v", stage, k, err)
		}
		if r, err := f.block.Floor(k, f.c.HostAt(i)); err != nil || !r.Found || r.Key != k {
			t.Fatalf("%s: blocked lost key %d: %v", stage, k, err)
		}
		if r, err := f.bucket.Floor(k, f.c.HostAt(i)); err != nil || !r.Found || r.Key != k {
			t.Fatalf("%s: bucketed lost key %d: %v", stage, k, err)
		}
	}
	for i, p := range f.pts {
		if ok, _, err := f.points.Contains(p, f.c.HostAt(i)); err != nil || !ok {
			t.Fatalf("%s: points lost %v: %v", stage, p, err)
		}
	}
	for i, s := range f.strs {
		if ok, _, err := f.strw.Contains(s, f.c.HostAt(i)); err != nil || !ok {
			t.Fatalf("%s: strings lost %q: %v", stage, s, err)
		}
	}
}

// TestCrashFailoverMatchesControl is the acceptance property: with
// Replicas k, crashing hosts mid-workload (one at a time, repaired by
// Cluster.Crash between events — at most k-1 dead replicas at any
// moment) loses zero keys and answers every query identically to a
// crash-free control build across all six structures.
func TestCrashFailoverMatchesControl(t *testing.T) {
	for _, k := range []int{2, 3} {
		stormed := buildFailoverFixture(t, 10, k, 101)
		control := buildFailoverFixture(t, 10, k, 101)
		for round := 0; round < 3; round++ {
			victim := stormed.c.HostAt(3 + round)
			if err := stormed.c.Crash(victim); err != nil {
				t.Fatalf("k=%d crash %d: %v", k, victim, err)
			}
			if err := stormed.c.CheckConsistent(); err != nil {
				t.Fatalf("k=%d after crash %d: %v", k, round, err)
			}
			got := stormed.queryAll(t, 555+uint64(round))
			want := control.queryAll(t, 555+uint64(round))
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d round %d: answer %d = %v, control says %v", k, round, i, got[i], want[i])
				}
			}
		}
		stormed.checkAllKeys(t, "after crash storm")
	}
}

// TestCrashBeyondToleranceReportsLoss pins k = 1: the crash exceeds the
// replication tolerance, Cluster.Crash reports a DataLossError, and
// queries split into typed fail-fast errors (lost units) and correct
// answers (surviving units) — the availability measure the failover
// bench records.
func TestCrashBeyondToleranceReportsLoss(t *testing.T) {
	f := buildFailoverFixture(t, 8, 1, 33)
	err := f.c.Crash(f.c.HostAt(2))
	var dl *DataLossError
	if !errors.As(err, &dl) || dl.Units <= 0 {
		t.Fatalf("k=1 crash returned %v, want DataLossError with positive units", err)
	}
	failed, answered := 0, 0
	for i, key := range f.keys {
		r, err := f.oned.Floor(key, f.c.HostAt(i))
		switch {
		case err == nil:
			if !r.Found || r.Key != key {
				t.Fatalf("answered query for stored key %d returned (%d,%v)", key, r.Key, r.Found)
			}
			answered++
		case errors.Is(err, ErrHostDown):
			failed++
		default:
			t.Fatalf("k=1 post-crash query failed with %v, want ErrHostDown", err)
		}
	}
	if failed == 0 {
		t.Fatal("crash lost units but no query failed")
	}
	if answered == 0 {
		t.Fatal("availability collapsed to zero: surviving units must keep answering")
	}
}

// TestCrashValidation pins the clean-error contract of Cluster.Crash.
func TestCrashValidation(t *testing.T) {
	c := NewCluster(3)
	rng := xrand.New(3)
	if _, err := NewOneDim(c, distinctKeys(rng, 64), Options{Seed: 3, Replicas: 2}); err != nil {
		t.Fatal(err)
	}
	victim := c.HostAt(1)
	if err := c.Crash(victim); err != nil {
		t.Fatalf("first crash: %v", err)
	}
	if err := c.Crash(victim); err == nil {
		t.Fatal("second crash of the same host succeeded")
	}
	if err := c.Leave(victim); err == nil {
		t.Fatal("leave of a crashed host succeeded")
	}
	if err := c.Crash(HostID(999)); err == nil {
		t.Fatal("crash of unknown host succeeded")
	}
	if err := c.Crash(HostID(-1)); err == nil {
		t.Fatal("crash of negative host succeeded")
	}
	if err := c.Crash(c.HostAt(0)); err != nil {
		t.Fatalf("crash down to one host: %v", err)
	}
	if err := c.Crash(c.HostAt(0)); err == nil {
		t.Fatal("crash of the last live host succeeded")
	}
	// The cluster can regrow from the lone survivor.
	c.Join()
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("after regrow: %v", err)
	}
}

// TestCrashedOriginRejectedByBatches pins that a crashed host cannot
// originate batch operations: origin validation reports it like any
// departed host.
func TestCrashedOriginRejectedByBatches(t *testing.T) {
	c := NewCluster(6)
	defer c.Close()
	rng := xrand.New(19)
	w, err := NewOneDim(c, distinctKeys(rng, 128), Options{Seed: 19, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	victim := c.HostAt(4)
	if err := c.Crash(victim); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if _, err := w.FloorBatch([]uint64{1, 2, 3}, []HostID{victim}); err == nil {
		t.Fatal("batch with crashed origin succeeded")
	}
	if _, err := w.FloorBatch([]uint64{1, 2, 3}, nil); err != nil {
		t.Fatalf("round-robin batch after crash: %v", err)
	}
}

// TestCrashWithUpdatesWritesThrough interleaves inserts and deletes
// with crashes at k = 2: updates write through to every replica, so no
// crash loses an update applied before it.
func TestCrashWithUpdatesWritesThrough(t *testing.T) {
	c := NewCluster(8)
	rng := xrand.New(47)
	keys := distinctKeys(rng, 600)
	w, err := NewOneDim(c, keys[:200], Options{Seed: 47, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBlocked(c, keys[:200], Options{Seed: 48, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	live := map[uint64]bool{}
	for _, k := range keys[:200] {
		live[k] = true
	}
	next := 200
	for round := 0; round < 4; round++ {
		for i := 0; i < 50; i++ {
			k := keys[next]
			next++
			if _, err := w.Insert(k, c.HostAt(i)); err != nil {
				t.Fatalf("round %d insert: %v", round, err)
			}
			if _, err := b.Insert(k, c.HostAt(i)); err != nil {
				t.Fatalf("round %d blocked insert: %v", round, err)
			}
			live[k] = true
		}
		del := 0
		for _, k := range keys[:next] {
			if del >= 20 {
				break
			}
			if live[k] {
				if _, err := w.Delete(k, c.HostAt(del)); err != nil {
					t.Fatalf("round %d delete: %v", round, err)
				}
				if _, err := b.Delete(k, c.HostAt(del)); err != nil {
					t.Fatalf("round %d blocked delete: %v", round, err)
				}
				delete(live, k)
				del++
			}
		}
		if err := c.Crash(c.HostAt(2)); err != nil {
			t.Fatalf("round %d crash: %v", round, err)
		}
		c.Join()
		if err := c.CheckConsistent(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for k := range live {
			if ok, _, err := w.Contains(k, c.HostAt(0)); err != nil || !ok {
				t.Fatalf("round %d: onedim lost key %d after crash: %v", round, k, err)
			}
			if r, err := b.Floor(k, c.HostAt(0)); err != nil || !r.Found || r.Key != k {
				t.Fatalf("round %d: blocked lost key %d after crash: %v", round, k, err)
			}
		}
	}
}

// TestBatchRacesCrash races InsertBatch/DeleteBatch/FloorBatch against
// Join, Leave, and Crash on the four engines PR 3's interleaving test
// skipped (blocked, bucketed, points, strings), at Replicas 2 so
// crashes lose nothing. Churn and crashes take the write lock, so they
// serialize with the batches; the combination must end consistent with
// zero lost keys (run with -race).
func TestBatchRacesCrash(t *testing.T) {
	c := NewCluster(12)
	defer c.Close()
	rng := xrand.New(71)
	keys := distinctKeys(rng, 900)
	blocked, err := NewBlocked(c, keys[:300], Options{Seed: 71, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	bucketed, err := NewBucketed(c, keys[:300], Options{Seed: 72, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]Point, 400)
	for i := range pts {
		pts[i] = Point{uint32(i * 13), uint32(i*7 + 1)}
	}
	points, err := NewPoints(c, 2, pts[:200], Options{Seed: 73, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	strs := make([]string, 400)
	alpha := []byte("acgt")
	for i := range strs {
		b := make([]byte, 6)
		v := i
		for j := range b {
			b[j] = alpha[v%4]
			v /= 4
		}
		strs[i] = string(b)
	}
	strw, err := NewStrings(c, strs[:200], Options{Seed: 74, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // blocked: insert batch + delete batch rounds
		defer wg.Done()
		for r := 0; r < 3; r++ {
			lo, hi := 300+r*100, 300+(r+1)*100
			if _, err := blocked.InsertBatch(keys[lo:hi], nil); err != nil {
				t.Errorf("blocked insert batch: %v", err)
				return
			}
			if _, err := blocked.DeleteBatch(keys[lo:hi], nil); err != nil {
				t.Errorf("blocked delete batch: %v", err)
				return
			}
		}
	}()
	go func() { // bucketed
		defer wg.Done()
		for r := 0; r < 3; r++ {
			lo, hi := 600+r*100, 600+(r+1)*100
			if _, err := bucketed.InsertBatch(keys[lo:hi], nil); err != nil {
				t.Errorf("bucketed insert batch: %v", err)
				return
			}
			if _, err := bucketed.DeleteBatch(keys[lo:hi], nil); err != nil {
				t.Errorf("bucketed delete batch: %v", err)
				return
			}
		}
	}()
	go func() { // points
		defer wg.Done()
		for r := 0; r < 3; r++ {
			lo, hi := 200+r*60, 200+(r+1)*60
			if _, err := points.InsertBatch(pts[lo:hi], nil); err != nil {
				t.Errorf("points insert batch: %v", err)
				return
			}
			if _, err := points.DeleteBatch(pts[lo:hi], nil); err != nil {
				t.Errorf("points delete batch: %v", err)
				return
			}
		}
	}()
	go func() { // strings
		defer wg.Done()
		for r := 0; r < 3; r++ {
			lo, hi := 200+r*60, 200+(r+1)*60
			if _, err := strw.InsertBatch(strs[lo:hi], nil); err != nil {
				t.Errorf("strings insert batch: %v", err)
				return
			}
			if _, err := strw.DeleteBatch(strs[lo:hi], nil); err != nil {
				t.Errorf("strings delete batch: %v", err)
				return
			}
		}
	}()
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; i < 6; i++ {
			switch i % 3 {
			case 0:
				c.Join()
			case 1:
				if c.Hosts() > 6 {
					if err := c.Leave(c.HostAt(1)); err != nil {
						t.Errorf("leave: %v", err)
						return
					}
				}
			case 2:
				if c.Hosts() > 6 {
					if err := c.Crash(c.HostAt(2)); err != nil {
						t.Errorf("crash: %v", err)
						return
					}
				}
			}
		}
	}()
	wg.Wait()
	churn.Wait()
	if err := c.CheckConsistent(); err != nil {
		t.Fatalf("after batch × churn × crash: %v", err)
	}
	// Zero lost keys on the untouched base sets.
	for i, k := range keys[:300] {
		if r, err := blocked.Floor(k, c.HostAt(i)); err != nil || !r.Found || r.Key != k {
			t.Fatalf("blocked lost key %d: %v", k, err)
		}
		if r, err := bucketed.Floor(k, c.HostAt(i)); err != nil || !r.Found || r.Key != k {
			t.Fatalf("bucketed lost key %d: %v", k, err)
		}
	}
	for i, p := range pts[:200] {
		if ok, _, err := points.Contains(p, c.HostAt(i)); err != nil || !ok {
			t.Fatalf("points lost %v: %v", p, err)
		}
	}
	for i, s := range strs[:200] {
		if ok, _, err := strw.Contains(s, c.HostAt(i)); err != nil || !ok {
			t.Fatalf("strings lost %q: %v", s, err)
		}
	}
}

// TestJoinDoesNotResurrectLostUnits is the regression for a rebalance
// bug: after a k = 1 crash whose data loss was reported, a Join must
// not relocate dead replica slots onto the newcomer — that would
// silently "resurrect" units the crash destroyed (and discharge the
// crashed host's already-zeroed storage counter below zero). Lost
// units keep failing fast with ErrHostDown after any number of joins.
func TestJoinDoesNotResurrectLostUnits(t *testing.T) {
	f := buildFailoverFixture(t, 6, 1, 59)
	victim := f.c.HostAt(2)
	err := f.c.Crash(victim)
	var dl *DataLossError
	if !errors.As(err, &dl) || dl.Units <= 0 {
		t.Fatalf("k=1 crash returned %v, want DataLossError", err)
	}
	// A fixed origin keeps every query's entry leaf — and hence its
	// route through the range hierarchy — identical across the joins,
	// so the failed set can only change if a dead replica moves.
	origin := f.c.HostAt(0)
	countFailed := func() int {
		failed := 0
		for _, k := range f.keys {
			if _, err := f.oned.Floor(k, origin); errors.Is(err, ErrHostDown) {
				failed++
			}
		}
		for _, k := range f.keys {
			if _, err := f.block.Floor(k, origin); errors.Is(err, ErrHostDown) {
				failed++
			}
		}
		return failed
	}
	before := countFailed()
	if before == 0 {
		t.Fatal("crash lost units but no query fails")
	}
	for i := 0; i < 3; i++ {
		f.c.Join()
	}
	if after := countFailed(); after != before {
		t.Fatalf("joins changed the failed-query count from %d to %d: lost units must stay lost", before, after)
	}
	if st := f.c.net.Storage(victim); st != 0 {
		t.Fatalf("crashed host's storage counter is %d after joins, want 0 (nothing may move off a dead host)", st)
	}
}
