package skipwebs

import (
	"testing"

	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// goldenParity pins the exact message accounting of fixed-seed workloads.
// The values were recorded before the allocation-free descent refactor
// (PR 2); the paper's cost model counts messages, so any performance work
// on the Go execution must leave every number here byte-identical. If a
// deliberate accounting change ever invalidates them, regenerate with
// `go test -run TestParityGolden -v` and review the diff as a semantic
// change, not a refactor.
var goldenParity = map[string]int64{
	"onedim/hops":      goldenOneDimHops,
	"onedim/messages":  goldenOneDimMessages,
	"blocked/hops":     goldenBlockedHops,
	"blocked/messages": goldenBlockedMessages,
	"bucketed/hops":    goldenBucketedHops,
	"points/hops":      goldenPointsHops,
	"strings/hops":     goldenStringsHops,
}

const (
	goldenOneDimHops      = 31435
	goldenOneDimMessages  = 31435
	goldenBlockedHops     = 21513
	goldenBlockedMessages = 21513
	goldenBucketedHops    = 2796
	goldenPointsHops      = 24064
	goldenStringsHops     = 23708
)

// parityWorkloads runs each structure through a fixed mixed workload and
// returns the observed accounting totals keyed like goldenParity.
func parityWorkloads(t *testing.T) map[string]int64 {
	t.Helper()
	got := make(map[string]int64)

	// One-dimensional general web: queries, inserts, deletes.
	{
		c := NewCluster(64)
		keys := experiments.Keys(xrand.New(11), 1024, 1<<40)
		w, err := NewOneDim(c, keys[:768], Options{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(12)
		var hops int64
		for i := 0; i < 512; i++ {
			r, err := w.Floor(rng.Uint64n(1<<40), HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(r.Hops)
		}
		for i := 768; i < 1024; i++ {
			h, err := w.Insert(keys[i], HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		for i := 0; i < 256; i++ {
			h, err := w.Delete(keys[i*3], HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		got["onedim/hops"] = hops
		got["onedim/messages"] = c.Stats().TotalMessages
	}

	// Blocked web: floor queries, range queries, inserts, deletes.
	{
		c := NewCluster(64)
		keys := experiments.Keys(xrand.New(21), 2048, 1<<40)
		w, err := NewBlocked(c, keys[:1536], Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(22)
		var hops int64
		for i := 0; i < 512; i++ {
			r, err := w.Floor(rng.Uint64n(1<<40), HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(r.Hops)
		}
		for i := 0; i < 64; i++ {
			lo := rng.Uint64n(1 << 40)
			_, h, err := w.Range(lo, lo+(1<<33), HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		for i := 1536; i < 2048; i++ {
			h, err := w.Insert(keys[i], HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		for i := 0; i < 512; i++ {
			h, err := w.Delete(keys[i*2], HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		got["blocked/hops"] = hops
		got["blocked/messages"] = c.Stats().TotalMessages
	}

	// Bucketed web: floor queries and inserts.
	{
		c := NewCluster(32)
		keys := experiments.Keys(xrand.New(31), 1024, 1<<40)
		w, err := NewBucketed(c, keys[:896], Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(32)
		var hops int64
		for i := 0; i < 256; i++ {
			r, err := w.Floor(rng.Uint64n(1<<40), HostID(rng.Intn(32)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(r.Hops)
		}
		for i := 896; i < 1024; i++ {
			h, err := w.Insert(keys[i], HostID(rng.Intn(32)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		got["bucketed/hops"] = hops
	}

	// Point set (quadtree): locations, inserts, deletes.
	{
		c := NewCluster(64)
		rng := xrand.New(41)
		raw := experiments.UniformPoints(rng, 2, 768, 1<<30)
		pts := make([]Point, len(raw))
		for i, p := range raw {
			pts[i] = Point(p)
		}
		w, err := NewPoints(c, 2, pts[:512], Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		qrng := xrand.New(42)
		var hops int64
		for i := 0; i < 256; i++ {
			q := Point{uint32(qrng.Uint64n(1 << 30)), uint32(qrng.Uint64n(1 << 30))}
			loc, err := w.Locate(q, HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(loc.Hops)
		}
		for i := 512; i < 768; i++ {
			h, err := w.Insert(pts[i], HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		for i := 0; i < 128; i++ {
			h, err := w.Delete(pts[i*2], HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		got["points/hops"] = hops
	}

	// String set (trie): searches, inserts, deletes.
	{
		c := NewCluster(64)
		rng := xrand.New(51)
		keys := experiments.UniformStrings(rng, 768, "acgt", 6, 24)
		w, err := NewStrings(c, keys[:512], Options{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		qrng := xrand.New(52)
		var hops int64
		for i := 0; i < 256; i++ {
			loc, err := w.Search(keys[qrng.Intn(512)], HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(loc.Hops)
		}
		for i := 512; i < 768; i++ {
			h, err := w.Insert(keys[i], HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		for i := 0; i < 128; i++ {
			h, err := w.Delete(keys[i*2], HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		got["strings/hops"] = hops
	}

	return got
}

// TestParityGolden asserts that message/hop accounting on fixed seeds is
// unchanged by performance refactors.
func TestParityGolden(t *testing.T) {
	got := parityWorkloads(t)
	for name, want := range goldenParity {
		if got[name] != want {
			t.Errorf("parity %s: got %d, want %d", name, got[name], want)
		}
	}
	if t.Failed() || testing.Verbose() {
		for name, v := range got {
			t.Logf("observed %s = %d", name, v)
		}
	}
}
