package skipwebs

import (
	"testing"

	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// goldenParity pins the exact message accounting of fixed-seed workloads.
// The values were recorded before the allocation-free descent refactor
// (PR 2); the paper's cost model counts messages, so any performance work
// on the Go execution must leave every number here byte-identical. If a
// deliberate accounting change ever invalidates them, regenerate with
// `go test -run TestParityGolden -v` and review the diff as a semantic
// change, not a refactor.
var goldenParity = map[string]int64{
	"onedim/hops":      goldenOneDimHops,
	"onedim/messages":  goldenOneDimMessages,
	"blocked/hops":     goldenBlockedHops,
	"blocked/messages": goldenBlockedMessages,
	"bucketed/hops":    goldenBucketedHops,
	"points/hops":      goldenPointsHops,
	"strings/hops":     goldenStringsHops,
}

const (
	goldenOneDimHops      = 31435
	goldenOneDimMessages  = 31435
	goldenBlockedHops     = 21513
	goldenBlockedMessages = 21513
	goldenBucketedHops    = 2796
	goldenPointsHops      = 24064
	goldenStringsHops     = 23708
)

// parityWorkloads runs each structure through a fixed mixed workload and
// returns the observed accounting totals keyed like goldenParity.
func parityWorkloads(t *testing.T) map[string]int64 {
	t.Helper()
	got := make(map[string]int64)

	// One-dimensional general web: queries, inserts, deletes.
	{
		c := NewCluster(64)
		keys := experiments.Keys(xrand.New(11), 1024, 1<<40)
		w, err := NewOneDim(c, keys[:768], Options{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(12)
		var hops int64
		for i := 0; i < 512; i++ {
			r, err := w.Floor(rng.Uint64n(1<<40), HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(r.Hops)
		}
		for i := 768; i < 1024; i++ {
			h, err := w.Insert(keys[i], HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		for i := 0; i < 256; i++ {
			h, err := w.Delete(keys[i*3], HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		got["onedim/hops"] = hops
		got["onedim/messages"] = c.Stats().TotalMessages
	}

	// Blocked web: floor queries, range queries, inserts, deletes.
	{
		c := NewCluster(64)
		keys := experiments.Keys(xrand.New(21), 2048, 1<<40)
		w, err := NewBlocked(c, keys[:1536], Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(22)
		var hops int64
		for i := 0; i < 512; i++ {
			r, err := w.Floor(rng.Uint64n(1<<40), HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(r.Hops)
		}
		for i := 0; i < 64; i++ {
			lo := rng.Uint64n(1 << 40)
			_, h, err := w.Range(lo, lo+(1<<33), HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		for i := 1536; i < 2048; i++ {
			h, err := w.Insert(keys[i], HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		for i := 0; i < 512; i++ {
			h, err := w.Delete(keys[i*2], HostID(rng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		got["blocked/hops"] = hops
		got["blocked/messages"] = c.Stats().TotalMessages
	}

	// Bucketed web: floor queries and inserts.
	{
		c := NewCluster(32)
		keys := experiments.Keys(xrand.New(31), 1024, 1<<40)
		w, err := NewBucketed(c, keys[:896], Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(32)
		var hops int64
		for i := 0; i < 256; i++ {
			r, err := w.Floor(rng.Uint64n(1<<40), HostID(rng.Intn(32)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(r.Hops)
		}
		for i := 896; i < 1024; i++ {
			h, err := w.Insert(keys[i], HostID(rng.Intn(32)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		got["bucketed/hops"] = hops
	}

	// Point set (quadtree): locations, inserts, deletes.
	{
		c := NewCluster(64)
		rng := xrand.New(41)
		raw := experiments.UniformPoints(rng, 2, 768, 1<<30)
		pts := make([]Point, len(raw))
		for i, p := range raw {
			pts[i] = Point(p)
		}
		w, err := NewPoints(c, 2, pts[:512], Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		qrng := xrand.New(42)
		var hops int64
		for i := 0; i < 256; i++ {
			q := Point{uint32(qrng.Uint64n(1 << 30)), uint32(qrng.Uint64n(1 << 30))}
			loc, err := w.Locate(q, HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(loc.Hops)
		}
		for i := 512; i < 768; i++ {
			h, err := w.Insert(pts[i], HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		for i := 0; i < 128; i++ {
			h, err := w.Delete(pts[i*2], HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		got["points/hops"] = hops
	}

	// String set (trie): searches, inserts, deletes.
	{
		c := NewCluster(64)
		rng := xrand.New(51)
		keys := experiments.UniformStrings(rng, 768, "acgt", 6, 24)
		w, err := NewStrings(c, keys[:512], Options{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		qrng := xrand.New(52)
		var hops int64
		for i := 0; i < 256; i++ {
			loc, err := w.Search(keys[qrng.Intn(512)], HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(loc.Hops)
		}
		for i := 512; i < 768; i++ {
			h, err := w.Insert(keys[i], HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		for i := 0; i < 128; i++ {
			h, err := w.Delete(keys[i*2], HostID(qrng.Intn(64)))
			if err != nil {
				t.Fatal(err)
			}
			hops += int64(h)
		}
		got["strings/hops"] = hops
	}

	return got
}

// goldenSingleOps pins the exact per-operation message cost of individual
// inserts and deletes on fixed seeds, recorded before the PR 4 update-path
// refactor (bulk construction + allocation-free updates). Where the total
// workload goldens above would let compensating errors cancel, these
// detect any drift in a single update's charge sequence.
var goldenSingleOps = map[string][]int{
	"onedim":   goldenOneDimSingle,
	"blocked":  goldenBlockedSingle,
	"bucketed": goldenBucketedSingle,
	"points":   goldenPointsSingle,
	"strings":  goldenStringsSingle,
}

// Eight insert costs followed by eight delete costs per structure.
var (
	goldenOneDimSingle   = []int{56, 51, 40, 50, 49, 42, 40, 41, 26, 28, 22, 27, 22, 23, 21, 24}
	goldenBlockedSingle  = []int{13, 22, 13, 18, 17, 16, 16, 15, 12, 14, 12, 13, 10, 10, 9, 10}
	goldenBucketedSingle = []int{6, 6, 10, 4, 5, 5, 8, 4, 5, 8, 6, 11, 5, 5, 6, 3}
	goldenPointsSingle   = []int{43, 53, 56, 52, 46, 54, 49, 50, 25, 30, 32, 30, 30, 30, 28, 31}
	goldenStringsSingle  = []int{45, 51, 51, 47, 44, 45, 49, 44, 23, 31, 27, 23, 28, 28, 24, 29}
)

// singleOpWorkloads performs eight single inserts then eight single
// deletes per dynamic structure on fixed seeds and returns the observed
// per-operation hop counts keyed like goldenSingleOps.
func singleOpWorkloads(t *testing.T) map[string][]int {
	t.Helper()
	got := make(map[string][]int)
	record := func(name string, ins, del func(i int) (int, error)) {
		var hops []int
		for i := 0; i < 8; i++ {
			h, err := ins(i)
			if err != nil {
				t.Fatalf("%s insert %d: %v", name, i, err)
			}
			hops = append(hops, h)
		}
		for i := 0; i < 8; i++ {
			h, err := del(i)
			if err != nil {
				t.Fatalf("%s delete %d: %v", name, i, err)
			}
			hops = append(hops, h)
		}
		got[name] = hops
	}

	{
		c := NewCluster(32)
		keys := experiments.Keys(xrand.New(61), 272, 1<<40)
		w, err := NewOneDim(c, keys[:256], Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		record("onedim",
			func(i int) (int, error) { return w.Insert(keys[256+i], HostID(i%32)) },
			func(i int) (int, error) { return w.Delete(keys[i*7], HostID(i%32)) })
	}
	{
		c := NewCluster(32)
		keys := experiments.Keys(xrand.New(62), 272, 1<<40)
		w, err := NewBlocked(c, keys[:256], Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		record("blocked",
			func(i int) (int, error) { return w.Insert(keys[256+i], HostID(i%32)) },
			func(i int) (int, error) { return w.Delete(keys[i*7], HostID(i%32)) })
	}
	{
		c := NewCluster(32)
		keys := experiments.Keys(xrand.New(63), 272, 1<<40)
		w, err := NewBucketed(c, keys[:256], Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		record("bucketed",
			func(i int) (int, error) { return w.Insert(keys[256+i], HostID(i%32)) },
			func(i int) (int, error) { return w.Delete(keys[i*7], HostID(i%32)) })
	}
	{
		c := NewCluster(32)
		rng := xrand.New(64)
		raw := experiments.UniformPoints(rng, 2, 272, 1<<30)
		pts := make([]Point, len(raw))
		for i, p := range raw {
			pts[i] = Point(p)
		}
		w, err := NewPoints(c, 2, pts[:256], Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		record("points",
			func(i int) (int, error) { return w.Insert(pts[256+i], HostID(i%32)) },
			func(i int) (int, error) { return w.Delete(pts[i*7], HostID(i%32)) })
	}
	{
		c := NewCluster(32)
		keys := experiments.UniformStrings(xrand.New(65), 272, "acgt", 6, 24)
		w, err := NewStrings(c, keys[:256], Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		record("strings",
			func(i int) (int, error) { return w.Insert(keys[256+i], HostID(i%32)) },
			func(i int) (int, error) { return w.Delete(keys[i*7], HostID(i%32)) })
	}
	return got
}

// TestParityGoldenSingleOps asserts that the message cost of each
// individual insert and delete on fixed seeds is unchanged by performance
// refactors — the per-operation complement of TestParityGolden's totals.
func TestParityGoldenSingleOps(t *testing.T) {
	got := singleOpWorkloads(t)
	for name, want := range goldenSingleOps {
		if len(got[name]) != len(want) {
			t.Fatalf("parity %s: got %d ops, want %d", name, len(got[name]), len(want))
		}
		for i, w := range want {
			if got[name][i] != w {
				t.Errorf("parity %s op %d: got %d hops, want %d", name, i, got[name][i], w)
			}
		}
	}
	if t.Failed() || testing.Verbose() {
		for name, v := range got {
			t.Logf("observed %s = %v", name, v)
		}
	}
}

// TestParityGolden asserts that message/hop accounting on fixed seeds is
// unchanged by performance refactors.
func TestParityGolden(t *testing.T) {
	got := parityWorkloads(t)
	for name, want := range goldenParity {
		if got[name] != want {
			t.Errorf("parity %s: got %d, want %d", name, got[name], want)
		}
	}
	if t.Failed() || testing.Verbose() {
		for name, v := range got {
			t.Logf("observed %s = %d", name, v)
		}
	}
}
