package skipwebs

import (
	"fmt"
	"sync"
	"testing"

	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/trapmap"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// The read-path cache parity suite. Every test builds TWIN fixtures —
// one cluster with Options.CacheFingers + Options.NegativeBloom, one
// identical cluster without — and replays the same deterministic
// workload against both. The control is the oracle: the cached
// structure must return the identical answer on every operation while
// charging at most the control's messages, and strictly fewer in
// aggregate once the workload repeats queries.

// cachedOpts/controlOpts are the twin option sets: identical except for
// the two cache knobs, so placement and routing are bit-identical.
func cachedOpts(seed uint64) Options {
	return Options{Seed: seed, WriteStripes: 4, CacheFingers: true, NegativeBloom: true}
}

func controlOpts(seed uint64) Options {
	return Options{Seed: seed, WriteStripes: 4}
}

// floorSet is the Floor/Contains/Insert/Delete surface OneDim, Blocked,
// and Bucketed share, letting one parity loop cover all three.
type floorSet interface {
	Floor(q uint64, origin HostID) (FloorResult, error)
	Contains(key uint64, origin HostID) (bool, int, error)
	Insert(key uint64, origin HostID) (int, error)
	Delete(key uint64, origin HostID) (int, error)
	FloorBatch(qs []uint64, origins []HostID) ([]FloorResult, error)
}

// TestCacheParityFloorStructures replays a skewed mixed workload —
// Zipf floor queries, absent-key membership floods, interleaved
// inserts and deletes, and a churn event — against cached and control
// twins of OneDim, Blocked, and Bucketed.
func TestCacheParityFloorStructures(t *testing.T) {
	builders := []struct {
		name  string
		build func(c *Cluster, keys []uint64, o Options) (floorSet, error)
	}{
		{"onedim", func(c *Cluster, keys []uint64, o Options) (floorSet, error) { return NewOneDim(c, keys, o) }},
		{"blocked", func(c *Cluster, keys []uint64, o Options) (floorSet, error) { return NewBlocked(c, keys, o) }},
		{"bucketed", func(c *Cluster, keys []uint64, o Options) (floorSet, error) { return NewBucketed(c, keys, o) }},
	}
	for _, bb := range builders {
		bb := bb
		t.Run(bb.name, func(t *testing.T) {
			const hosts, nkeys, nops = 24, 800, 3000
			rng := xrand.New(11)
			keys := distinctKeys(rng, nkeys+200)
			build, extra := keys[:nkeys], keys[nkeys:]
			absent := xrand.AbsentKeys(11, keys, 128, 1<<40)

			cc, ctl := NewCluster(hosts), NewCluster(hosts)
			cached, err := bb.build(cc, build, cachedOpts(7))
			if err != nil {
				t.Fatal(err)
			}
			control, err := bb.build(ctl, build, controlOpts(7))
			if err != nil {
				t.Fatal(err)
			}

			zipf := xrand.NewZipf(xrand.New(xrand.Substream(11, 1)), 1.1, nkeys)
			pick := xrand.New(xrand.Substream(11, 2))
			sumCached, sumControl := 0, 0
			nextExtra, inFlight := 0, []uint64{}
			for op := 0; op < nops; op++ {
				origin := HostID(op % hosts)
				switch r := pick.Intn(100); {
				case r < 60: // skewed floor on a present key
					q := build[zipf.Next()]
					a, err1 := cached.Floor(q, origin)
					b, err2 := control.Floor(q, origin)
					if err1 != nil || err2 != nil {
						t.Fatalf("op %d floor errs: %v / %v", op, err1, err2)
					}
					if a.Key != b.Key || a.Found != b.Found {
						t.Fatalf("op %d Floor(%d) diverged: cached %+v control %+v", op, q, a, b)
					}
					if a.Hops > b.Hops {
						t.Fatalf("op %d Floor(%d): cached %d hops > control %d", op, q, a.Hops, b.Hops)
					}
					sumCached += a.Hops
					sumControl += b.Hops
				case r < 80: // absent-key membership flood
					q := absent[pick.Intn(len(absent))]
					af, ah, err1 := cached.Contains(q, origin)
					bf, bh, err2 := control.Contains(q, origin)
					if err1 != nil || err2 != nil {
						t.Fatalf("op %d contains errs: %v / %v", op, err1, err2)
					}
					if af != bf {
						t.Fatalf("op %d Contains(absent %d) diverged: %v vs %v", op, q, af, bf)
					}
					if ah > bh {
						t.Fatalf("op %d Contains(%d): cached %d hops > control %d", op, q, ah, bh)
					}
					sumCached += ah
					sumControl += bh
				case r < 90: // present-key membership
					q := build[zipf.Next()]
					af, ah, err1 := cached.Contains(q, origin)
					bf, bh, err2 := control.Contains(q, origin)
					if err1 != nil || err2 != nil || af != bf || ah > bh {
						t.Fatalf("op %d Contains(present %d): %v/%d/%v vs %v/%d/%v",
							op, q, af, ah, err1, bf, bh, err2)
					}
					sumCached += ah
					sumControl += bh
				case r < 96 && nextExtra < len(extra): // insert a fresh key
					k := extra[nextExtra]
					nextExtra++
					inFlight = append(inFlight, k)
					if _, err := cached.Insert(k, origin); err != nil {
						t.Fatal(err)
					}
					if _, err := control.Insert(k, origin); err != nil {
						t.Fatal(err)
					}
				default: // delete a previously inserted key
					if len(inFlight) == 0 {
						continue
					}
					k := inFlight[len(inFlight)-1]
					inFlight = inFlight[:len(inFlight)-1]
					if _, err := cached.Delete(k, origin); err != nil {
						t.Fatal(err)
					}
					if _, err := control.Delete(k, origin); err != nil {
						t.Fatal(err)
					}
				}
				if op == nops/2 {
					// Identical churn on both twins: the control stays an
					// exact oracle, and the cached side must invalidate.
					cc.Join()
					ctl.Join()
					if err := cc.Leave(cc.HostAt(3)); err != nil {
						t.Fatal(err)
					}
					if err := ctl.Leave(ctl.HostAt(3)); err != nil {
						t.Fatal(err)
					}
				}
			}
			if sumCached >= sumControl {
				t.Fatalf("no aggregate reduction: cached %d hops, control %d", sumCached, sumControl)
			}
			st := cc.Stats()
			if st.CacheHits == 0 || st.BloomTrueNegatives == 0 {
				t.Fatalf("cache counters flat: %+v", st)
			}
			if err := cc.CheckConsistent(); err != nil {
				t.Fatal(err)
			}

			// Batch parity: same queries, same explicit origins; per-origin
			// serialization keeps cached batch hop counts deterministic.
			qs := make([]uint64, 200)
			origins := make([]HostID, len(qs))
			for i := range qs {
				qs[i] = build[zipf.Next()]
				origins[i] = cc.HostAt(i % 8)
			}
			ra, err := cached.FloorBatch(qs, origins)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := control.FloorBatch(qs, origins)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ra {
				if ra[i].Key != rb[i].Key || ra[i].Found != rb[i].Found {
					t.Fatalf("batch %d diverged: %+v vs %+v", i, ra[i], rb[i])
				}
				if ra[i].Hops > rb[i].Hops {
					t.Fatalf("batch %d: cached %d hops > control %d", i, ra[i].Hops, rb[i].Hops)
				}
			}
		})
	}
}

// TestCacheParityPoints replays skewed Locate/Contains/Nearest traffic
// with interleaved point updates against cached and control Points
// twins.
func TestCacheParityPoints(t *testing.T) {
	const hosts, npts, nops = 16, 512, 1500
	rng := xrand.New(13)
	var pts []Point
	for _, p := range experiments.UniformPoints(rng, 2, npts+100, 1<<30) {
		pts = append(pts, Point(p))
	}
	build, extra := pts[:npts], pts[npts:]

	cc, ctl := NewCluster(hosts), NewCluster(hosts)
	cached, err := NewPoints(cc, 2, build, cachedOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	control, err := NewPoints(ctl, 2, build, controlOpts(9))
	if err != nil {
		t.Fatal(err)
	}

	zipf := xrand.NewZipf(xrand.New(xrand.Substream(13, 1)), 1.2, npts)
	pick := xrand.New(xrand.Substream(13, 2))
	absent := func() Point {
		base := build[pick.Intn(npts)]
		return Point{base[0] ^ 1, base[1] ^ 3}
	}
	sumCached, sumControl := 0, 0
	nextExtra := 0
	for op := 0; op < nops; op++ {
		origin := HostID(op % hosts)
		switch r := pick.Intn(100); {
		case r < 50: // skewed locate
			q := build[zipf.Next()]
			a, err1 := cached.Locate(q, origin)
			b, err2 := control.Locate(q, origin)
			if err1 != nil || err2 != nil {
				t.Fatalf("op %d locate errs: %v / %v", op, err1, err2)
			}
			if a.Leaf != b.Leaf || a.CellPrefix != b.CellPrefix || a.CellBits != b.CellBits ||
				fmt.Sprint(a.LeafPoint) != fmt.Sprint(b.LeafPoint) {
				t.Fatalf("op %d Locate diverged: %+v vs %+v", op, a, b)
			}
			if a.Hops > b.Hops {
				t.Fatalf("op %d Locate: cached %d hops > control %d", op, a.Hops, b.Hops)
			}
			sumCached += a.Hops
			sumControl += b.Hops
		case r < 70: // absent membership
			q := absent()
			af, ah, err1 := cached.Contains(q, origin)
			bf, bh, err2 := control.Contains(q, origin)
			if err1 != nil || err2 != nil || af != bf || ah > bh {
				t.Fatalf("op %d Contains(absent): %v/%d/%v vs %v/%d/%v", op, af, ah, err1, bf, bh, err2)
			}
			sumCached += ah
			sumControl += bh
		case r < 90: // skewed nearest
			q := build[zipf.Next()]
			pa, ah, err1 := cached.Nearest(q, origin)
			pb, bh, err2 := control.Nearest(q, origin)
			if err1 != nil || err2 != nil {
				t.Fatalf("op %d nearest errs: %v / %v", op, err1, err2)
			}
			if fmt.Sprint(pa) != fmt.Sprint(pb) {
				t.Fatalf("op %d Nearest diverged: %v vs %v", op, pa, pb)
			}
			if ah > bh {
				t.Fatalf("op %d Nearest: cached %d hops > control %d", op, ah, bh)
			}
			sumCached += ah
			sumControl += bh
		default: // updates: insert a fresh point, delete a build point, reinsert it
			if nextExtra < len(extra) {
				p := extra[nextExtra]
				nextExtra++
				if _, err := cached.Insert(p, origin); err != nil {
					t.Fatal(err)
				}
				if _, err := control.Insert(p, origin); err != nil {
					t.Fatal(err)
				}
			}
			v := build[pick.Intn(npts)]
			if _, err := cached.Delete(v, origin); err != nil {
				continue // already deleted earlier in the stream; skip both twins
			}
			if _, err := control.Delete(v, origin); err != nil {
				t.Fatal(err)
			}
			if _, err := cached.Insert(v, origin); err != nil {
				t.Fatal(err)
			}
			if _, err := control.Insert(v, origin); err != nil {
				t.Fatal(err)
			}
		}
	}
	if sumCached >= sumControl {
		t.Fatalf("no aggregate reduction: cached %d hops, control %d", sumCached, sumControl)
	}
	if err := cc.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheParityStrings replays skewed Search/Contains/PrefixSearch
// traffic with trie updates against cached and control Strings twins.
func TestCacheParityStrings(t *testing.T) {
	const hosts, nkeys, nops = 16, 600, 1500
	rng := xrand.New(17)
	keys := experiments.UniformStrings(rng, nkeys+100, "acgt", 6, 24)
	build, extra := keys[:nkeys], keys[nkeys:]
	absent := xrand.AbsentStrings(17, build, 96)

	cc, ctl := NewCluster(hosts), NewCluster(hosts)
	cached, err := NewStrings(cc, build, cachedOpts(21))
	if err != nil {
		t.Fatal(err)
	}
	control, err := NewStrings(ctl, build, controlOpts(21))
	if err != nil {
		t.Fatal(err)
	}

	zipf := xrand.NewZipf(xrand.New(xrand.Substream(17, 1)), 1.2, nkeys)
	pick := xrand.New(xrand.Substream(17, 2))
	sumCached, sumControl := 0, 0
	nextExtra := 0
	for op := 0; op < nops; op++ {
		origin := HostID(op % hosts)
		switch r := pick.Intn(100); {
		case r < 50: // skewed exact search
			q := build[zipf.Next()]
			a, err1 := cached.Search(q, origin)
			b, err2 := control.Search(q, origin)
			if err1 != nil || err2 != nil {
				t.Fatalf("op %d search errs: %v / %v", op, err1, err2)
			}
			if a.Locus != b.Locus || a.IsKey != b.IsKey || a.Exact != b.Exact {
				t.Fatalf("op %d Search(%q) diverged: %+v vs %+v", op, q, a, b)
			}
			if a.Hops > b.Hops {
				t.Fatalf("op %d Search: cached %d hops > control %d", op, a.Hops, b.Hops)
			}
			sumCached += a.Hops
			sumControl += b.Hops
		case r < 70: // absent-key flood
			q := absent[pick.Intn(len(absent))]
			af, ah, err1 := cached.Contains(q, origin)
			bf, bh, err2 := control.Contains(q, origin)
			if err1 != nil || err2 != nil || af != bf || ah > bh {
				t.Fatalf("op %d Contains(%q): %v/%d/%v vs %v/%d/%v", op, q, af, ah, err1, bf, bh, err2)
			}
			sumCached += ah
			sumControl += bh
		case r < 85: // repeated prefix enumeration
			q := build[zipf.Next()]
			prefix := q[:4]
			ka, ah, err1 := cached.PrefixSearch(prefix, 16, origin)
			kb, bh, err2 := control.PrefixSearch(prefix, 16, origin)
			if err1 != nil || err2 != nil {
				t.Fatalf("op %d prefix errs: %v / %v", op, err1, err2)
			}
			if fmt.Sprint(ka) != fmt.Sprint(kb) {
				t.Fatalf("op %d PrefixSearch(%q) diverged: %v vs %v", op, prefix, ka, kb)
			}
			if ah > bh {
				t.Fatalf("op %d PrefixSearch: cached %d hops > control %d", op, ah, bh)
			}
			sumCached += ah
			sumControl += bh
		default: // trie updates
			if nextExtra >= len(extra) {
				continue
			}
			k := extra[nextExtra]
			nextExtra++
			if _, err := cached.Insert(k, origin); err != nil {
				t.Fatal(err)
			}
			if _, err := control.Insert(k, origin); err != nil {
				t.Fatal(err)
			}
		}
	}
	if sumCached >= sumControl {
		t.Fatalf("no aggregate reduction: cached %d hops, control %d", sumCached, sumControl)
	}
	if err := cc.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheParityPlanar replays repeated planar point-location queries
// against cached and control Planar twins, with identical churn in the
// middle to prove the churn-only epoch invalidates.
func TestCacheParityPlanar(t *testing.T) {
	const hosts, nsegs, nops = 12, 100, 800
	bounds := PlanarBounds{MinX: 0, MinY: 0, MaxX: 20000, MaxY: 20000}
	rng := xrand.New(19)
	raw := experiments.DisjointSegments(rng, nsegs,
		trapmap.Rect{MinX: 0, MinY: 0, MaxX: 20000, MaxY: 20000})
	segs := make([]PlanarSegment, len(raw))
	for i, s := range raw {
		segs[i] = PlanarSegment{
			A: PlanarPoint{X: s.A.X, Y: s.A.Y},
			B: PlanarPoint{X: s.B.X, Y: s.B.Y},
		}
	}
	cc, ctl := NewCluster(hosts), NewCluster(hosts)
	cached, err := NewPlanar(cc, segs, bounds, cachedOpts(31))
	if err != nil {
		t.Fatal(err)
	}
	control, err := NewPlanar(ctl, segs, bounds, controlOpts(31))
	if err != nil {
		t.Fatal(err)
	}
	// A small pool of query points revisited Zipf-style.
	pick := xrand.New(xrand.Substream(19, 1))
	pool := make([]PlanarPoint, 64)
	for i := range pool {
		pool[i] = PlanarPoint{X: int64(pick.Uint64n(20000)), Y: int64(pick.Uint64n(20000))}
	}
	zipf := xrand.NewZipf(xrand.New(xrand.Substream(19, 2)), 1.2, len(pool))
	sumCached, sumControl := 0, 0
	for op := 0; op < nops; op++ {
		origin := HostID(op % hosts)
		q := pool[zipf.Next()]
		a, err1 := cached.Locate(q, origin)
		b, err2 := control.Locate(q, origin)
		if err1 != nil || err2 != nil {
			t.Fatalf("op %d locate errs: %v / %v", op, err1, err2)
		}
		if a.Top != b.Top || a.Bottom != b.Bottom || a.HasTop != b.HasTop ||
			a.HasBottom != b.HasBottom || a.LeftX != b.LeftX || a.RightX != b.RightX {
			t.Fatalf("op %d Locate diverged: %+v vs %+v", op, a, b)
		}
		if a.Hops > b.Hops {
			t.Fatalf("op %d Locate: cached %d hops > control %d", op, a.Hops, b.Hops)
		}
		sumCached += a.Hops
		sumControl += b.Hops
		if op == nops/2 {
			cc.Join()
			ctl.Join()
			if err := cc.Leave(cc.HostAt(2)); err != nil {
				t.Fatal(err)
			}
			if err := ctl.Leave(ctl.HostAt(2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if sumCached >= sumControl {
		t.Fatalf("no aggregate reduction: cached %d hops, control %d", sumCached, sumControl)
	}
	if cc.Stats().CacheInvalidations == 0 {
		t.Fatal("churn produced no invalidations on revisited queries")
	}
}

// TestCacheInvalidationUpdateThenQuery pins the sharpest invalidation
// edge: populate an entry, mutate its own stripe so the answer changes,
// and require the very next query to see the new answer (epoch check
// evicts the stale entry).
func TestCacheInvalidationUpdateThenQuery(t *testing.T) {
	c := NewCluster(8)
	rng := xrand.New(23)
	keys := distinctKeys(rng, 400)
	d, err := NewOneDim(c, keys, cachedOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	// Pick a query above some stored key, with room for a closer key.
	var q uint64 = 1 << 39
	before, err := d.Floor(q, 0)
	if err != nil || !before.Found {
		t.Fatalf("Floor(%d) = %+v, %v", q, before, err)
	}
	again, err := d.Floor(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Hops != 0 || again.Key != before.Key {
		t.Fatalf("second Floor not a free hit: %+v (want key %d, 0 hops)", again, before.Key)
	}
	// Insert a strictly closer floor into the same stripe as q's answer.
	closer := before.Key + (q-before.Key)/2
	if closer == before.Key {
		t.Fatalf("no room between %d and %d", before.Key, q)
	}
	if _, err := d.Insert(closer, 0); err != nil {
		t.Fatal(err)
	}
	after, err := d.Floor(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after.Key != closer {
		t.Fatalf("stale cache answer survived insert: Floor(%d) = %d, want %d", q, after.Key, closer)
	}
	// Delete it again: the answer must fall back, through another eviction.
	if _, err := d.Delete(closer, 0); err != nil {
		t.Fatal(err)
	}
	final, err := d.Floor(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.Key != before.Key {
		t.Fatalf("Floor(%d) after delete = %d, want %d", q, final.Key, before.Key)
	}
	st := c.Stats()
	if st.CacheInvalidations < 2 {
		t.Fatalf("expected >= 2 invalidations (insert + delete), got %d", st.CacheInvalidations)
	}
	// The same key updated in place: membership flips false -> true must
	// not be masked by the bloom (superset) or a stale contains entry.
	missing := q + 12345
	if ok, _, err := d.Contains(missing, 1); err != nil || ok {
		t.Fatalf("Contains(missing) = %v, %v", ok, err)
	}
	if _, err := d.Insert(missing, 1); err != nil {
		t.Fatal(err)
	}
	if ok, _, err := d.Contains(missing, 1); err != nil || !ok {
		t.Fatalf("Contains(inserted) = %v, %v — bloom or cache hid the insert", ok, err)
	}
}

// TestCacheStatsByHostMatchesAggregate checks the observability
// contract: per-host counters sum to the cluster aggregate, and hits
// land on the origin hosts that repeated their queries.
func TestCacheStatsByHostMatchesAggregate(t *testing.T) {
	c := NewCluster(6)
	rng := xrand.New(29)
	keys := distinctKeys(rng, 300)
	d, err := NewBlocked(c, keys, cachedOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	absent := xrand.AbsentKeys(29, keys, 32, 1<<40)
	for round := 0; round < 3; round++ {
		for i := 0; i < 120; i++ {
			if _, err := d.Floor(keys[i%40], HostID(i%6)); err != nil {
				t.Fatal(err)
			}
			if _, _, err := d.Contains(absent[i%len(absent)], HostID(i%6)); err != nil {
				t.Fatal(err)
			}
		}
	}
	agg := c.Stats()
	byHost := c.CacheStatsByHost()
	var sum CacheStats
	for _, cs := range byHost {
		sum.add(cs)
	}
	if sum.Hits != agg.CacheHits || sum.Misses != agg.CacheMisses ||
		sum.Invalidations != agg.CacheInvalidations ||
		sum.BloomTrueNegatives != agg.BloomTrueNegatives ||
		sum.BloomFalsePositives != agg.BloomFalsePositives {
		t.Fatalf("per-host sum %+v != aggregate %+v", sum, agg)
	}
	if agg.CacheHits == 0 || agg.BloomTrueNegatives == 0 {
		t.Fatalf("counters flat: %+v", agg)
	}
	for h := HostID(0); h < 6; h++ {
		if byHost[h].Hits == 0 {
			t.Fatalf("host %d repeated its queries but shows no hits: %+v", h, byHost[h])
		}
	}
}

// TestCacheRacesChurn runs cached batch queries concurrently with
// Join/Leave/Crash/Restart at Replicas 2 on a durable cluster — the
// race the epoch + cluster-lock design must survive. Run under -race;
// answers are checked against the static ground truth throughout, and
// full consistency after.
func TestCacheRacesChurn(t *testing.T) {
	const hosts, nkeys = 10, 300
	c := NewCluster(hosts)
	rng := xrand.New(31)
	keys := distinctKeys(rng, nkeys)
	opts := cachedOpts(13)
	opts.Replicas = 2
	opts.Durable = true
	w, err := NewBlocked(c, keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	absent := xrand.AbsentKeys(31, keys, 64, 1<<40)

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		qs := make([]uint64, 64)
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := range qs {
				if i%4 == 0 {
					qs[i] = absent[(round+i)%len(absent)]
				} else {
					qs[i] = keys[(round*7+i)%nkeys]
				}
			}
			res, err := w.FloorBatch(qs, nil)
			if err != nil {
				errCh <- fmt.Errorf("floor batch: %w", err)
				return
			}
			for i, r := range res {
				if i%4 != 0 && (!r.Found || r.Key != qs[i]) {
					errCh <- fmt.Errorf("round %d: Floor(%d) = %+v", round, qs[i], r)
					return
				}
			}
		}
	}()

	// Churn driver: join, leave, crash + restart, repeatedly.
	for cycle := 0; cycle < 3; cycle++ {
		c.Join()
		if err := c.Leave(c.HostAt(1)); err != nil {
			t.Fatal(err)
		}
		victim := c.HostAt(2)
		if err := c.Crash(victim); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Restart(victim); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := c.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	// Post-churn ground truth, including the bloom's absent answers.
	for i, k := range keys {
		r, err := w.Floor(k, c.HostAt(i))
		if err != nil || !r.Found || r.Key != k {
			t.Fatalf("post-churn Floor(%d) = %+v, %v", k, r, err)
		}
	}
	for i, k := range absent {
		ok, _, err := w.Contains(k, c.HostAt(i))
		if err != nil || ok {
			t.Fatalf("post-churn Contains(absent %d) = %v, %v", k, ok, err)
		}
	}
}
