package skipwebs

import (
	"fmt"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/sim"
)

// Options tunes structure construction.
type Options struct {
	// Seed drives all randomness (level bits, host assignment). The zero
	// seed is valid and deterministic.
	Seed uint64
	// M is the per-host memory parameter for Blocked and Bucketed webs;
	// 0 means ceil(log2 n)+1.
	M int
	// BucketSize is the keys-per-host target for Bucketed webs; 0 means
	// n/H.
	BucketSize int
	// Replicas is the fault-tolerance factor k: every range, block, and
	// bucket is mirrored on k distinct live hosts, updates write through
	// to all of them (k-1 extra messages per written unit), queries fail
	// over to live replicas, and crashing any k-1 hosts loses no data
	// (Cluster.Crash repairs the survivors back to k copies). 0 or 1
	// means unreplicated — the default, whose placement and message
	// accounting are bit-identical to pre-replication builds.
	Replicas int
	// Durable makes every host of the cluster persist its storage: each
	// storage-charging mutation appends one write-ahead-log record (a
	// charged fsync message at the host), with a checkpoint folding the
	// log every sim.DefaultCheckpointEvery records. A crashed durable
	// host keeps its disk image and can rejoin via Cluster.Restart —
	// checkpoint + WAL replay restores its shard exactly, and a merkle
	// reconcile re-copies only what diverged while it was down — instead
	// of the full re-replication of Cluster.Repair. Durability is
	// cluster-wide: the first durable structure enables it for every
	// host and every structure, and it stays on. False (the default)
	// leaves placement and message accounting bit-identical to
	// non-durable builds.
	Durable bool
}

// FloorResult is the answer to a one-dimensional nearest-neighbor query.
type FloorResult struct {
	// Key is the largest stored key <= the query; valid only when Found.
	Key uint64
	// Found is false when the query is below every stored key.
	Found bool
	// Hops is the number of messages the query cost.
	Hops int
}

// OneDim is the general skip-web over a sorted set (arbitrary blocking):
// O(log n) per-host memory and O(log n) expected query and update
// messages, matching skip graphs while using the level-partition
// hierarchy of Figure 2.
type OneDim struct {
	c *Cluster
	w *core.Web[*core.ListLevel, uint64, uint64]
}

// NewOneDim builds a general 1-d skip-web over keys (distinct).
// Construction costs O(n log n) expected storage units spread over the
// hosts (Theorem 2's memory bound divided among H hosts).
func NewOneDim(c *Cluster, keys []uint64, opts Options) (*OneDim, error) {
	done := c.beginBuild(opts.Durable)
	w, err := core.NewWeb[*core.ListLevel, uint64, uint64](
		core.NewListOps(), c.network(), keys, core.Config{Seed: opts.Seed, Replicas: opts.Replicas})
	done()
	if err != nil {
		return nil, fmt.Errorf("skipwebs: %w", err)
	}
	d := &OneDim{c: c, w: w}
	c.attach(d)
	return d, nil
}

// Len returns the number of stored keys.
func (d *OneDim) Len() int { return d.w.Len() }

// Floor answers a nearest-neighbor (floor) query from the given host in
// O(log n) expected messages (Theorem 2): one hyperlink hop plus an
// expected O(1) local refinement per level of the hierarchy.
//
// The descent is allocation-free in steady state: the accounting Op is
// pooled, range enumeration uses the core iterator, and all local
// searches are O(log n) binary searches over each level's maintained
// sorted order. Message accounting is unaffected by any of this.
func (d *OneDim) Floor(q uint64, origin HostID) (FloorResult, error) {
	res, err := d.w.Query(q, origin)
	if err != nil {
		return FloorResult{}, fmt.Errorf("skipwebs: %w", err)
	}
	g := d.w.GroundStructure()
	if g.IsHead(res.Range) {
		return FloorResult{Found: false, Hops: res.Hops}, nil
	}
	return FloorResult{Key: g.Key(res.Range), Found: true, Hops: res.Hops}, nil
}

// Contains reports whether key is stored, with the query's message cost
// — O(log n) expected messages, the same bound as Floor.
func (d *OneDim) Contains(key uint64, origin HostID) (bool, int, error) {
	r, err := d.Floor(key, origin)
	if err != nil {
		return false, 0, err
	}
	return r.Found && r.Key == key, r.Hops, nil
}

// Insert adds a key, returning the update's message cost — O(log n)
// expected messages (Section 4): a routed query plus an O(1)-message
// structural change per level of the key's bit path.
func (d *OneDim) Insert(key uint64, origin HostID) (int, error) {
	h, err := d.w.Insert(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// Delete removes a key, returning the update's message cost — O(log n)
// expected messages (Section 4), unwound top-down so hyperlink repair
// always targets live ranges.
func (d *OneDim) Delete(key uint64, origin HostID) (int, error) {
	h, err := d.w.Delete(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// Keys returns the stored keys in ascending order.
func (d *OneDim) Keys() []uint64 { return d.w.GroundStructure().Keys() }

// rehome and rebalance are the churn hooks Cluster.Leave and
// Cluster.Join drive (see the migrator contract in skipwebs.go).
func (d *OneDim) rehome(from HostID, op *sim.Op)    { d.w.Rehome(from, op) }
func (d *OneDim) rebalance(onto HostID, op *sim.Op) { d.w.Rebalance(onto, op) }

// repair is the crash-recovery hook Cluster.Crash drives: re-replicate
// every under-replicated range from its surviving live replicas.
func (d *OneDim) repair(op *sim.Op) error { return d.w.Repair(op) }

// restart is the durable-recovery hook Cluster.Restart drives: merkle-
// reconcile the restarted host's ranges against one live peer each.
func (d *OneDim) restart(h HostID, op *sim.Op) int { return d.w.RestartHost(h, op) }

func (d *OneDim) kind() string { return "onedim" }

// CheckConsistent verifies the web's invariants: every range placed on
// a live host, hyperlinks matching recomputation, symmetric backrefs,
// and per-level counts that add up. Cost: O(n log n) local work, no
// messages.
func (d *OneDim) CheckConsistent() error { return d.w.CheckInvariants() }

// FloorBatch answers one floor query per element of qs concurrently (see
// the batch engine notes in batch.go). Results are in input order.
func (d *OneDim) FloorBatch(qs []uint64, origins []HostID) ([]FloorResult, error) {
	return runReadBatch(d.c, qs, origins, d.Floor)
}

// ContainsBatch answers one membership query per key concurrently.
func (d *OneDim) ContainsBatch(keys []uint64, origins []HostID) ([]ContainsResult, error) {
	return runReadBatch(d.c, keys, origins, func(k uint64, origin HostID) (ContainsResult, error) {
		ok, hops, err := d.Contains(k, origin)
		return ContainsResult{Found: ok, Hops: hops}, err
	})
}

// InsertBatch adds the keys under the cluster's write lock (single
// writer), returning each update's message cost in input order. Sorted
// runs within an origin group are dispatched as one unit (see the
// sorted-run notes in batch.go); accounting is identical to per-op
// inserts.
func (d *OneDim) InsertBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runInsertBatchKeys(d.c, keys, origins, d.Insert,
		func(ks []uint64, origin HostID, hops []int, errs []error) {
			for i, k := range ks {
				hops[i], errs[i] = d.Insert(k, origin)
			}
		})
}

// DeleteBatch removes the keys under the cluster's write lock, returning
// each update's message cost in input order.
func (d *OneDim) DeleteBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runWriteBatch(d.c, keys, origins, d.Delete)
}

// Blocked is the improved one-dimensional skip-web of Section 2.4.1:
// with per-host memory M, queries and updates take O(log n / log M)
// expected messages — O(log n / log log n) at M = Θ(log n).
type Blocked struct {
	c *Cluster
	w *core.BlockedWeb
}

// NewBlocked builds the blocked 1-d skip-web over keys (distinct).
// Construction places O(n log n) expected storage units in blocks of
// O(M) contiguous ranges, one block per host (Section 2.4.1).
func NewBlocked(c *Cluster, keys []uint64, opts Options) (*Blocked, error) {
	done := c.beginBuild(opts.Durable)
	w, err := core.NewBlockedWeb(c.network(), keys, core.BlockedConfig{Seed: opts.Seed, M: opts.M, Replicas: opts.Replicas})
	done()
	if err != nil {
		return nil, fmt.Errorf("skipwebs: %w", err)
	}
	b := &Blocked{c: c, w: w}
	c.attach(b)
	return b, nil
}

// Len returns the number of stored keys.
func (b *Blocked) Len() int { return b.w.Len() }

// M returns the effective memory parameter.
func (b *Blocked) M() int { return b.w.M() }

// Floor answers a nearest-neighbor (floor) query from the given host in
// O(log n / log M) expected messages (Theorem 2 with Section 2.4.1
// blocking): the query pays only when it crosses between strata. The
// descent performs no per-query heap allocation (see the package
// README's Performance section).
func (b *Blocked) Floor(q uint64, origin HostID) (FloorResult, error) {
	k, ok, hops, err := b.w.Query(q, origin)
	if err != nil {
		return FloorResult{Hops: hops}, fmt.Errorf("skipwebs: %w", err)
	}
	return FloorResult{Key: k, Found: ok, Hops: hops}, nil
}

// Range returns every stored key in [lo, hi] in ascending order, plus
// the message cost: one floor query plus one message per storage block
// the walk crosses.
func (b *Blocked) Range(lo, hi uint64, origin HostID) ([]uint64, int, error) {
	if lo > hi {
		return nil, 0, fmt.Errorf("skipwebs: empty range [%d, %d]", lo, hi)
	}
	keys, hops, err := b.w.Range(lo, hi, origin)
	if err != nil {
		return keys, hops, fmt.Errorf("skipwebs: %w", err)
	}
	return keys, hops, nil
}

// Insert adds a key, returning the update's message cost — O(log n /
// log M) expected messages (Section 4): updates confined to one
// stratum's co-located copies cost a single message per stratum.
func (b *Blocked) Insert(key uint64, origin HostID) (int, error) {
	h, err := b.w.Insert(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// Delete removes a key, returning the update's message cost — O(log n /
// log M) expected messages (Section 4); blocks keep directory slack
// rather than merging, as the paper amortizes.
func (b *Blocked) Delete(key uint64, origin HostID) (int, error) {
	h, err := b.w.Delete(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// FloorBatch answers one floor query per element of qs concurrently (see
// the batch engine notes in batch.go). Results are in input order.
func (b *Blocked) FloorBatch(qs []uint64, origins []HostID) ([]FloorResult, error) {
	return runReadBatch(b.c, qs, origins, b.Floor)
}

// ContainsBatch answers one membership query per key concurrently.
func (b *Blocked) ContainsBatch(keys []uint64, origins []HostID) ([]ContainsResult, error) {
	return runReadBatch(b.c, keys, origins, func(k uint64, origin HostID) (ContainsResult, error) {
		r, err := b.Floor(k, origin)
		return ContainsResult{Found: r.Found && r.Key == k, Hops: r.Hops}, err
	})
}

// RangeBatch answers one range query per element of rs concurrently.
func (b *Blocked) RangeBatch(rs []KeyRange, origins []HostID) ([]RangeResult, error) {
	return runReadBatch(b.c, rs, origins, func(r KeyRange, origin HostID) (RangeResult, error) {
		keys, hops, err := b.Range(r.Lo, r.Hi, origin)
		return RangeResult{Keys: keys, Hops: hops}, err
	})
}

// InsertBatch adds the keys under the cluster's write lock (single
// writer), returning each update's message cost in input order. Sorted
// runs within an origin group take the fast path: one dispatch per run,
// with consecutive descents sharing their uncharged hyperlink
// resolutions and the ascending order making every level's index splice
// an amortized O(1) append (see the sorted-run notes in batch.go).
// Message accounting is identical to per-op inserts, counter for
// counter.
func (b *Blocked) InsertBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runInsertBatchKeys(b.c, keys, origins, b.Insert,
		func(ks []uint64, origin HostID, hops []int, errs []error) {
			b.w.InsertRun(ks, origin, hops, errs)
			for i, err := range errs {
				if err != nil {
					errs[i] = fmt.Errorf("skipwebs: %w", err)
				}
			}
		})
}

// DeleteBatch removes the keys under the cluster's write lock, returning
// each update's message cost in input order.
func (b *Blocked) DeleteBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runWriteBatch(b.c, keys, origins, b.Delete)
}

// rehome and rebalance are the churn hooks Cluster.Leave and
// Cluster.Join drive: whole blocks (and their co-located stratum
// copies) migrate between hosts, one message per storage unit moved.
func (b *Blocked) rehome(from HostID, op *sim.Op)    { b.w.Rehome(from, op) }
func (b *Blocked) rebalance(onto HostID, op *sim.Op) { b.w.Rebalance(onto, op) }

// repair is the crash-recovery hook Cluster.Crash drives: re-replicate
// every under-replicated block from its surviving live replicas.
func (b *Blocked) repair(op *sim.Op) error { return b.w.Repair(op) }

// restart is the durable-recovery hook Cluster.Restart drives: merkle-
// reconcile the restarted host's blocks against one live peer each.
func (b *Blocked) restart(h HostID, op *sim.Op) int { return b.w.RestartHost(h, op) }

func (b *Blocked) kind() string { return "blocked" }

// CheckConsistent verifies the blocked web's invariants: sound level
// lists, child key sets partitioning their parents', ordered block
// directories, and every block on a live host. Cost: O(n log n) local
// work, no messages.
func (b *Blocked) CheckConsistent() error { return b.w.CheckInvariants() }

// Bucketed is the bucket skip-web (Table 1, last row): H < n hosts, each
// holding a contiguous run of ~n/H keys, with a blocked skip-web routing
// over the bucket separators. Queries and updates cost Õ(log_M H)
// messages — expected constant when M = n^ε.
type Bucketed struct {
	c *Cluster
	w *core.BucketWeb
}

// NewBucketed builds the bucket skip-web over keys (distinct).
func NewBucketed(c *Cluster, keys []uint64, opts Options) (*Bucketed, error) {
	target := opts.BucketSize
	if target <= 0 {
		target = len(keys)/c.Hosts() + 1
	}
	done := c.beginBuild(opts.Durable)
	w, err := core.NewBucketWeb(c.network(), keys, target, opts.M, opts.Seed, opts.Replicas)
	done()
	if err != nil {
		return nil, fmt.Errorf("skipwebs: %w", err)
	}
	b := &Bucketed{c: c, w: w}
	c.attach(b)
	return b, nil
}

// Len returns the number of stored keys.
func (b *Bucketed) Len() int { return b.w.Len() }

// NumBuckets returns the number of buckets.
func (b *Bucketed) NumBuckets() int { return b.w.NumBuckets() }

// Floor answers a nearest-neighbor (floor) query from the given host in
// Õ(log_M H) expected messages (Table 1, last row): a routed query over
// the H bucket separators plus one hop into the bucket — expected
// constant when M = n^ε.
func (b *Bucketed) Floor(q uint64, origin HostID) (FloorResult, error) {
	k, ok, hops, err := b.w.Query(q, origin)
	if err != nil {
		return FloorResult{Hops: hops}, fmt.Errorf("skipwebs: %w", err)
	}
	return FloorResult{Key: k, Found: ok, Hops: hops}, nil
}

// Range returns every stored key in [lo, hi] in ascending order, plus
// the message cost: one routed floor query plus one message per bucket
// visited.
func (b *Bucketed) Range(lo, hi uint64, origin HostID) ([]uint64, int, error) {
	if lo > hi {
		return nil, 0, fmt.Errorf("skipwebs: empty range [%d, %d]", lo, hi)
	}
	keys, hops, err := b.w.Range(lo, hi, origin)
	if err != nil {
		return keys, hops, fmt.Errorf("skipwebs: %w", err)
	}
	return keys, hops, nil
}

// Insert adds a key, returning the update's message cost — Õ(log_M H)
// expected messages: a routed floor query plus one hop into the bucket,
// with amortized separator insertions on bucket splits.
func (b *Bucketed) Insert(key uint64, origin HostID) (int, error) {
	h, err := b.w.Insert(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// Delete removes a key, returning the update's message cost — Õ(log_M
// H) expected messages; separators persist, as in the bucket skip
// graph.
func (b *Bucketed) Delete(key uint64, origin HostID) (int, error) {
	h, err := b.w.Delete(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// FloorBatch answers one floor query per element of qs concurrently (see
// the batch engine notes in batch.go). Results are in input order.
func (b *Bucketed) FloorBatch(qs []uint64, origins []HostID) ([]FloorResult, error) {
	return runReadBatch(b.c, qs, origins, b.Floor)
}

// ContainsBatch answers one membership query per key concurrently.
func (b *Bucketed) ContainsBatch(keys []uint64, origins []HostID) ([]ContainsResult, error) {
	return runReadBatch(b.c, keys, origins, func(k uint64, origin HostID) (ContainsResult, error) {
		r, err := b.Floor(k, origin)
		return ContainsResult{Found: r.Found && r.Key == k, Hops: r.Hops}, err
	})
}

// RangeBatch answers one range query per element of rs concurrently.
func (b *Bucketed) RangeBatch(rs []KeyRange, origins []HostID) ([]RangeResult, error) {
	return runReadBatch(b.c, rs, origins, func(r KeyRange, origin HostID) (RangeResult, error) {
		keys, hops, err := b.Range(r.Lo, r.Hi, origin)
		return RangeResult{Keys: keys, Hops: hops}, err
	})
}

// InsertBatch adds the keys under the cluster's write lock (single
// writer), returning each update's message cost in input order. Sorted
// runs within an origin group are dispatched as one unit (see the
// sorted-run notes in batch.go); accounting is identical to per-op
// inserts.
func (b *Bucketed) InsertBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runInsertBatchKeys(b.c, keys, origins, b.Insert,
		func(ks []uint64, origin HostID, hops []int, errs []error) {
			for i, k := range ks {
				hops[i], errs[i] = b.Insert(k, origin)
			}
		})
}

// DeleteBatch removes the keys under the cluster's write lock, returning
// each update's message cost in input order.
func (b *Bucketed) DeleteBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runWriteBatch(b.c, keys, origins, b.Delete)
}

// rehome and rebalance are the churn hooks Cluster.Leave and
// Cluster.Join drive: the separator routing web migrates like a blocked
// web, and each bucket moves as one unit of ~n/H keys, one message per
// key moved.
func (b *Bucketed) rehome(from HostID, op *sim.Op)    { b.w.Rehome(from, op) }
func (b *Bucketed) rebalance(onto HostID, op *sim.Op) { b.w.Rebalance(onto, op) }

// repair is the crash-recovery hook Cluster.Crash drives: re-replicate
// the routing web and every under-replicated bucket from surviving
// live replicas.
func (b *Bucketed) repair(op *sim.Op) error { return b.w.Repair(op) }

// restart is the durable-recovery hook Cluster.Restart drives: merkle-
// reconcile the restarted host's routing-web blocks and buckets against
// one live peer each.
func (b *Bucketed) restart(h HostID, op *sim.Op) int { return b.w.RestartHost(h, op) }

func (b *Bucketed) kind() string { return "bucketed" }

// CheckConsistent verifies the separator web's invariants plus the
// bucket directory: every bucket keyed by its separator, sorted, on a
// live host, and in one-to-one correspondence with the routing web's
// ground list. Cost: O(n log n) local work, no messages.
func (b *Bucketed) CheckConsistent() error { return b.w.CheckInvariants() }
