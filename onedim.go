package skipwebs

import (
	"errors"
	"fmt"
	"sort"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/sim"
)

// Options tunes structure construction.
type Options struct {
	// Seed drives all randomness (level bits, host assignment). The zero
	// seed is valid and deterministic.
	Seed uint64
	// M is the per-host memory parameter for Blocked and Bucketed webs;
	// 0 means ceil(log2 n)+1.
	M int
	// BucketSize is the keys-per-host target for Bucketed webs; 0 means
	// n/H.
	BucketSize int
	// Replicas is the fault-tolerance factor k: every range, block, and
	// bucket is mirrored on k distinct live hosts, updates write through
	// to all of them (k-1 extra messages per written unit), queries fail
	// over to live replicas, and crashing any k-1 hosts loses no data
	// (Cluster.Crash repairs the survivors back to k copies). 0 or 1
	// means unreplicated — the default, whose placement and message
	// accounting are bit-identical to pre-replication builds.
	Replicas int
	// Durable makes every host of the cluster persist its storage: each
	// storage-charging mutation appends one write-ahead-log record (a
	// charged fsync message at the host), with a checkpoint folding the
	// log every sim.DefaultCheckpointEvery records. A crashed durable
	// host keeps its disk image and can rejoin via Cluster.Restart —
	// checkpoint + WAL replay restores its shard exactly, and a merkle
	// reconcile re-copies only what diverged while it was down — instead
	// of the full re-replication of Cluster.Repair. Durability is
	// cluster-wide: the first durable structure enables it for every
	// host and every structure, and it stays on. False (the default)
	// leaves placement and message accounting bit-identical to
	// non-durable builds.
	Durable bool
	// WriteStripes shards the structure's writer lock: a value S > 1
	// partitions the key space into S contiguous code ranges frozen at
	// construction (rank-balanced over the build keys), each backed by
	// an independent sub-engine with its own seed-split PRNG, its own
	// scratch buffers, and its own single-writer/many-reader lock.
	// Update batches then run S writers in parallel — one per stripe —
	// while updates within a stripe keep strict input order and message
	// accounting stays deterministic: stripe assignment is a pure
	// function of the key, striping adds no charged messages, and a
	// concurrent striped batch charges exactly what a serial replay of
	// the same operations on the same striped structure charges.
	// Queries route to the stripe owning their key (a floor query falls
	// back across lower stripes when its own is empty below the query;
	// range and prefix queries visit every overlapping stripe). The
	// realized stripe count is at most min(S, build keys) and may be
	// further reduced by duplicate stripe codes. 0 or 1 (the default)
	// keeps one engine — placement and accounting bit-identical to
	// pre-striping builds. Planar structures are static and ignore the
	// knob.
	WriteStripes int
	// CacheFingers enables the per-origin-host finger/descent cache:
	// each host memoizes the answers of its recent queries (Floor,
	// Contains, Locate, Nearest, Search, PrefixSearch) in a small LRU
	// keyed by the exact query, validated by a per-stripe write-epoch
	// check before every reuse (see the invalidation contract in
	// cache.go). A valid hit answers locally for zero charged messages —
	// the host re-serves a frontier a previous descent already paid for —
	// and a miss or stale entry runs the completely unmodified descent,
	// so per-op messages never exceed the cache-free control. Epochs
	// cover inserts, deletes, and churn (Join/Leave/Crash/Restart).
	// False (the default) leaves the query path bit-identical to
	// cache-free builds in answers and accounting.
	CacheFingers bool
	// NegativeBloom enables per-stripe negative-lookup bloom filters for
	// the exact-membership queries (Contains): a query whose key hash
	// the filter proves was never inserted answers (false, 0 messages)
	// at the origin without any descent. Filters are supersets of the
	// stored set — Insert adds, Delete removes nothing, churn moves
	// placement not membership — so "definitely absent" is always
	// correct and "maybe present" at worst runs the full descent. One
	// documented asymmetry: a bloom negative can answer during a crash
	// where the control would fail with ErrHostDown, since the filter
	// needs no remote host to prove absence. False (the default) leaves
	// membership queries bit-identical to filter-free builds.
	NegativeBloom bool
	// Latency installs a per-link latency model on the cluster (model
	// plus seed, e.g. LogNormalLatency(seed, mu, sigma) or
	// TwoLevelLatency): every charged message then also accumulates its
	// sampled link cost onto the operation's critical path — replicated
	// write-throughs pay the max over mirrors, not the sum — and query
	// results and Cluster.Stats report latency alongside hops. Like
	// Durable, the model is cluster-wide: the first structure built with
	// one installs it for every host and structure (equivalent to
	// passing WithLatency to NewCluster). Nil (the default) is the
	// zero-latency model, whose accounting — every counter, every hop —
	// is bit-identical to pre-latency builds. Models must be installed
	// before traffic flows; structures built later on the same cluster
	// must pass the same model or nil.
	Latency CostModel
}

// FloorResult is the answer to a one-dimensional nearest-neighbor query.
type FloorResult struct {
	// Key is the largest stored key <= the query; valid only when Found.
	Key uint64
	// Found is false when the query is below every stored key.
	Found bool
	// Hops is the number of messages the query cost.
	Hops int
	// Latency is the query's modeled critical-path latency under the
	// cluster's latency model (Options.Latency / WithLatency), in model
	// units. Zero without a model, and zero on cache hits — a cached
	// answer is served at the origin without touching the network.
	Latency int64
}

// OneDim is the general skip-web over a sorted set (arbitrary blocking):
// O(log n) per-host memory and O(log n) expected query and update
// messages, matching skip graphs while using the level-partition
// hierarchy of Figure 2.
type OneDim struct {
	c  *Cluster
	st *stripeSet
	ws []*core.Web[*core.ListLevel, uint64, uint64]
	readPath
}

// NewOneDim builds a general 1-d skip-web over keys (distinct).
// Construction costs O(n log n) expected storage units spread over the
// hosts (Theorem 2's memory bound divided among H hosts). With
// Options.WriteStripes > 1 it builds one independent sub-web per key
// stripe (see the Options.WriteStripes doc).
func NewOneDim(c *Cluster, keys []uint64, opts Options) (*OneDim, error) {
	st, parts := splitKeysByStripe(keys, opts.WriteStripes)
	done := c.beginBuild(opts)
	ws := make([]*core.Web[*core.ListLevel, uint64, uint64], st.n())
	for i, part := range parts {
		w, err := core.NewWeb[*core.ListLevel, uint64, uint64](
			core.NewListOps(), c.network(), part,
			core.Config{Seed: stripeSeed(opts.Seed, i, st.n()), Replicas: opts.Replicas})
		if err != nil {
			done()
			return nil, fmt.Errorf("skipwebs: %w", err)
		}
		ws[i] = w
	}
	done()
	d := &OneDim{c: c, st: st, ws: ws, readPath: newReadPath(opts, st, partSizes(parts))}
	if d.nb != nil {
		for i, part := range parts {
			for _, k := range part {
				d.nb.add(i, hashKey64(k))
			}
		}
	}
	c.attach(d)
	return d, nil
}

// Len returns the number of stored keys.
func (d *OneDim) Len() int {
	n := 0
	for i := range d.ws {
		d.st.rlock(i)
		n += d.ws[i].Len()
		d.st.runlock(i)
	}
	return n
}

// Floor answers a nearest-neighbor (floor) query from the given host in
// O(log n) expected messages (Theorem 2): one hyperlink hop plus an
// expected O(1) local refinement per level of the hierarchy. Under
// write striping the query descends the stripe owning the key's code
// range (its read lock held for the descent) and falls back across
// lower stripes — each charging its own descent — when its own stripe
// holds no key at or below the query.
//
// The descent is allocation-free in steady state: the accounting Op is
// pooled, range enumeration uses the core iterator, and all local
// searches are O(log n) binary searches over each level's maintained
// sorted order. Message accounting is unaffected by any of this.
func (d *OneDim) Floor(q uint64, origin HostID) (FloorResult, error) {
	key := cacheKey{op: opFloor, code: q}
	var sum uint64
	if d.rc != nil {
		if v, ok := d.rc.get(origin, key); ok {
			return v.(FloorResult), nil
		}
		sum = d.rc.churnNow()
	}
	i0 := d.st.of(q)
	hops := 0
	var lat int64
	for i := i0; ; i-- {
		d.st.rlock(i)
		if d.rc != nil {
			sum += uint64(d.st.writeCount(i))
		}
		res, err := d.ws[i].Query(q, origin)
		if err != nil {
			d.st.runlock(i)
			return FloorResult{}, fmt.Errorf("skipwebs: %w", err)
		}
		g := d.ws[i].GroundStructure()
		if !g.IsHead(res.Range) {
			out := FloorResult{Key: g.Key(res.Range), Found: true,
				Hops: hops + res.Hops, Latency: lat + res.Latency}
			d.st.runlock(i)
			if d.rc != nil {
				// The answer depends only on stripes [i, i0]: lower stripes
				// hold strictly smaller codes the found key supersedes.
				d.rc.put(origin, key, FloorResult{Key: out.Key, Found: true}, i, i0, sum)
			}
			return out, nil
		}
		d.st.runlock(i)
		hops += res.Hops
		lat += res.Latency
		if i == 0 {
			if d.rc != nil {
				d.rc.put(origin, key, FloorResult{}, 0, i0, sum)
			}
			return FloorResult{Found: false, Hops: hops, Latency: lat}, nil
		}
	}
}

// Contains reports whether key is stored, with the query's message cost
// — O(log n) expected messages, the same bound as Floor. Exact
// membership needs only the stripe owning the key, so no cross-stripe
// fallback is charged.
func (d *OneDim) Contains(key uint64, origin HostID) (bool, int, error) {
	found, c, err := d.containsCost(key, origin)
	return found, c.Hops, err
}

// containsCost is Contains returning the full hop/latency cost pair —
// the variant ContainsBatch surfaces per-query latency through.
func (d *OneDim) containsCost(key uint64, origin HostID) (bool, core.Cost, error) {
	i := d.st.of(key)
	if d.nb != nil && d.nb.definitelyAbsent(origin, i, hashKey64(key)) {
		return false, core.Cost{}, nil
	}
	ck := cacheKey{op: opContains, code: key}
	var sum uint64
	if d.rc != nil {
		if v, ok := d.rc.get(origin, ck); ok {
			return v.(bool), core.Cost{}, nil
		}
		sum = d.rc.churnNow()
	}
	d.st.rlock(i)
	if d.rc != nil {
		sum += uint64(d.st.writeCount(i))
	}
	res, err := d.ws[i].Query(key, origin)
	if err != nil {
		d.st.runlock(i)
		return false, core.Cost{}, fmt.Errorf("skipwebs: %w", err)
	}
	g := d.ws[i].GroundStructure()
	found := !g.IsHead(res.Range) && g.Key(res.Range) == key
	d.st.runlock(i)
	if d.nb != nil && !found {
		d.nb.falsePositive(origin)
	}
	if d.rc != nil {
		d.rc.put(origin, ck, found, i, i, sum)
	}
	return found, core.Cost{Hops: res.Hops, Latency: res.Latency}, nil
}

// Insert adds a key, returning the update's message cost — O(log n)
// expected messages (Section 4): a routed query plus an O(1)-message
// structural change per level of the key's bit path. The update holds
// only its stripe's writer lock, so inserts into different stripes run
// concurrently.
func (d *OneDim) Insert(key uint64, origin HostID) (int, error) {
	i := d.st.of(key)
	d.st.wlock(i)
	defer d.st.wunlock(i)
	if d.nb != nil {
		d.nb.add(i, hashKey64(key))
	}
	h, err := d.ws[i].Insert(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// Delete removes a key, returning the update's message cost — O(log n)
// expected messages (Section 4), unwound top-down so hyperlink repair
// always targets live ranges. The update holds only its stripe's writer
// lock.
func (d *OneDim) Delete(key uint64, origin HostID) (int, error) {
	i := d.st.of(key)
	d.st.wlock(i)
	defer d.st.wunlock(i)
	h, err := d.ws[i].Delete(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// Keys returns the stored keys in ascending order (stripes hold
// contiguous code ranges, so per-stripe ascending output concatenates
// ascending).
func (d *OneDim) Keys() []uint64 {
	var out []uint64
	for i := range d.ws {
		d.st.rlock(i)
		out = append(out, d.ws[i].GroundStructure().Keys()...)
		d.st.runlock(i)
	}
	return out
}

// rehome and rebalance are the churn hooks Cluster.Leave and
// Cluster.Join drive (see the migrator contract in skipwebs.go). Churn
// holds the cluster write lock, which excludes every stripe writer (they
// hold the cluster read lock), so the hooks walk all stripes unlocked.
func (d *OneDim) rehome(from HostID, op *sim.Op) {
	d.bumpChurn()
	for _, w := range d.ws {
		w.Rehome(from, op)
	}
}
func (d *OneDim) rebalance(onto HostID, op *sim.Op) {
	d.bumpChurn()
	for _, w := range d.ws {
		w.Rebalance(onto, op)
	}
}

// repair is the crash-recovery hook Cluster.Crash drives: re-replicate
// every under-replicated range from its surviving live replicas.
func (d *OneDim) repair(op *sim.Op) error {
	d.bumpChurn()
	return repairStripes(op, d.ws)
}

// restart is the durable-recovery hook Cluster.Restart drives: merkle-
// reconcile the restarted host's ranges against one live peer each.
func (d *OneDim) restart(h HostID, op *sim.Op) int {
	d.bumpChurn()
	n := 0
	for _, w := range d.ws {
		n += w.RestartHost(h, op)
	}
	return n
}

func (d *OneDim) kind() string { return "onedim" }

// CheckConsistent verifies the web's invariants: every range placed on
// a live host, hyperlinks matching recomputation, symmetric backrefs,
// per-level counts that add up, and — under striping — every key stored
// in the stripe its code routes to. Cost: O(n log n) local work, no
// messages.
func (d *OneDim) CheckConsistent() error {
	for i, w := range d.ws {
		if err := w.CheckInvariants(); err != nil {
			return err
		}
		if d.st.n() > 1 {
			for _, k := range w.GroundStructure().Keys() {
				if d.st.of(k) != i {
					return fmt.Errorf("skipwebs: key %d stored in stripe %d but routes to stripe %d", k, i, d.st.of(k))
				}
			}
		}
	}
	return nil
}

// FloorBatch answers one floor query per element of qs concurrently (see
// the batch engine notes in batch.go). Results are in input order.
func (d *OneDim) FloorBatch(qs []uint64, origins []HostID) ([]FloorResult, error) {
	return runReadBatch(d.c, qs, origins, d.Floor)
}

// ContainsBatch answers one membership query per key concurrently.
func (d *OneDim) ContainsBatch(keys []uint64, origins []HostID) ([]ContainsResult, error) {
	return runReadBatch(d.c, keys, origins, func(k uint64, origin HostID) (ContainsResult, error) {
		ok, c, err := d.containsCost(k, origin)
		return ContainsResult{Found: ok, Hops: c.Hops, Latency: c.Latency}, err
	})
}

// InsertBatch adds the keys — one parallel writer per stripe, strict
// input order within each stripe — returning each update's message cost
// in input order. Sorted runs within an origin group are dispatched as
// one unit (see the sorted-run notes in batch.go); accounting is
// identical to per-op inserts.
func (d *OneDim) InsertBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runInsertBatchKeys(d.c, keys, origins, d.st, d.Insert,
		func(stripe int, ks []uint64, origin HostID, hops []int, errs []error) {
			d.st.wlock(stripe)
			defer d.st.wunlock(stripe)
			for i, k := range ks {
				if d.nb != nil {
					d.nb.add(stripe, hashKey64(k))
				}
				h, err := d.ws[stripe].Insert(k, origin)
				hops[i] = h
				if err != nil {
					errs[i] = fmt.Errorf("skipwebs: %w", err)
				}
			}
		})
}

// DeleteBatch removes the keys — one parallel writer per stripe, strict
// input order within each stripe — returning each update's message cost
// in input order.
func (d *OneDim) DeleteBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runWriteBatch(d.c, keys, origins, d.st, func(k uint64) uint64 { return k }, d.Delete)
}

// repairStripes runs the repair pass of every stripe engine, summing
// per-stripe data losses into one DataLossError so the cluster-level
// aggregation in repairAll sees the structure-wide count (mirroring its
// own cross-structure merge).
func repairStripes[W interface{ Repair(op *sim.Op) error }](op *sim.Op, ws []W) error {
	lost := 0
	hostSet := map[HostID]bool{}
	var errs []error
	for _, w := range ws {
		err := w.Repair(op)
		var dl *DataLossError
		switch {
		case err == nil:
		case errors.As(err, &dl):
			lost += dl.Units
			for _, h := range dl.Hosts {
				hostSet[h] = true
			}
		default:
			errs = append(errs, err)
		}
	}
	if lost > 0 {
		hosts := make([]HostID, 0, len(hostSet))
		for h := range hostSet {
			hosts = append(hosts, h)
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		errs = append(errs, &DataLossError{Units: lost, Hosts: hosts})
	}
	return errors.Join(errs...)
}

// Blocked is the improved one-dimensional skip-web of Section 2.4.1:
// with per-host memory M, queries and updates take O(log n / log M)
// expected messages — O(log n / log log n) at M = Θ(log n).
type Blocked struct {
	c  *Cluster
	st *stripeSet
	ws []*core.BlockedWeb
	readPath
}

// NewBlocked builds the blocked 1-d skip-web over keys (distinct).
// Construction places O(n log n) expected storage units in blocks of
// O(M) contiguous ranges, one block per host (Section 2.4.1). With
// Options.WriteStripes > 1 it builds one independent sub-web per key
// stripe (see the Options.WriteStripes doc).
func NewBlocked(c *Cluster, keys []uint64, opts Options) (*Blocked, error) {
	st, parts := splitKeysByStripe(keys, opts.WriteStripes)
	done := c.beginBuild(opts)
	ws := make([]*core.BlockedWeb, st.n())
	for i, part := range parts {
		w, err := core.NewBlockedWeb(c.network(), part,
			core.BlockedConfig{Seed: stripeSeed(opts.Seed, i, st.n()), M: opts.M, Replicas: opts.Replicas})
		if err != nil {
			done()
			return nil, fmt.Errorf("skipwebs: %w", err)
		}
		ws[i] = w
	}
	done()
	b := &Blocked{c: c, st: st, ws: ws, readPath: newReadPath(opts, st, partSizes(parts))}
	if b.nb != nil {
		for i, part := range parts {
			for _, k := range part {
				b.nb.add(i, hashKey64(k))
			}
		}
	}
	c.attach(b)
	return b, nil
}

// Len returns the number of stored keys.
func (b *Blocked) Len() int {
	n := 0
	for i := range b.ws {
		b.st.rlock(i)
		n += b.ws[i].Len()
		b.st.runlock(i)
	}
	return n
}

// M returns the effective memory parameter (of the first stripe when
// WriteStripes > 1; stripes size their default M from their own key
// counts).
func (b *Blocked) M() int { return b.ws[0].M() }

// Floor answers a nearest-neighbor (floor) query from the given host in
// O(log n / log M) expected messages (Theorem 2 with Section 2.4.1
// blocking): the query pays only when it crosses between strata. Under
// write striping the query descends its owning stripe and falls back
// across lower stripes when that stripe holds no key at or below the
// query. The descent performs no per-query heap allocation (see the
// package README's Performance section).
func (b *Blocked) Floor(q uint64, origin HostID) (FloorResult, error) {
	key := cacheKey{op: opFloor, code: q}
	var sum uint64
	if b.rc != nil {
		if v, ok := b.rc.get(origin, key); ok {
			return v.(FloorResult), nil
		}
		sum = b.rc.churnNow()
	}
	i0 := b.st.of(q)
	var cost core.Cost
	for i := i0; ; i-- {
		b.st.rlock(i)
		if b.rc != nil {
			sum += uint64(b.st.writeCount(i))
		}
		k, ok, c, err := b.ws[i].QueryCost(q, origin)
		b.st.runlock(i)
		cost.Hops += c.Hops
		cost.Latency += c.Latency
		if err != nil {
			return FloorResult{Hops: cost.Hops, Latency: cost.Latency}, fmt.Errorf("skipwebs: %w", err)
		}
		if ok {
			if b.rc != nil {
				b.rc.put(origin, key, FloorResult{Key: k, Found: true}, i, i0, sum)
			}
			return FloorResult{Key: k, Found: true, Hops: cost.Hops, Latency: cost.Latency}, nil
		}
		if i == 0 {
			if b.rc != nil {
				b.rc.put(origin, key, FloorResult{}, 0, i0, sum)
			}
			return FloorResult{Found: false, Hops: cost.Hops, Latency: cost.Latency}, nil
		}
	}
}

// Contains reports whether key is stored, with the query's message cost
// — O(log n / log M) expected messages, the same bound as Floor. Exact
// membership needs only the stripe owning the key, so no cross-stripe
// fallback is charged.
func (b *Blocked) Contains(key uint64, origin HostID) (bool, int, error) {
	found, c, err := b.containsCost(key, origin)
	return found, c.Hops, err
}

// containsCost is Contains returning the full hop/latency cost pair —
// the variant ContainsBatch surfaces per-query latency through.
func (b *Blocked) containsCost(key uint64, origin HostID) (bool, core.Cost, error) {
	i := b.st.of(key)
	if b.nb != nil && b.nb.definitelyAbsent(origin, i, hashKey64(key)) {
		return false, core.Cost{}, nil
	}
	ck := cacheKey{op: opContains, code: key}
	var sum uint64
	if b.rc != nil {
		if v, ok := b.rc.get(origin, ck); ok {
			return v.(bool), core.Cost{}, nil
		}
		sum = b.rc.churnNow()
	}
	b.st.rlock(i)
	if b.rc != nil {
		sum += uint64(b.st.writeCount(i))
	}
	kk, ok, c, err := b.ws[i].QueryCost(key, origin)
	b.st.runlock(i)
	if err != nil {
		return false, c, fmt.Errorf("skipwebs: %w", err)
	}
	found := ok && kk == key
	if b.nb != nil && !found {
		b.nb.falsePositive(origin)
	}
	if b.rc != nil {
		b.rc.put(origin, ck, found, i, i, sum)
	}
	return found, c, nil
}

// Range returns every stored key in [lo, hi] in ascending order, plus
// the message cost: one floor query plus one message per storage block
// the walk crosses, within every stripe the interval overlaps.
func (b *Blocked) Range(lo, hi uint64, origin HostID) ([]uint64, int, error) {
	keys, c, err := b.rangeCost(lo, hi, origin)
	return keys, c.Hops, err
}

// rangeCost is Range returning the full hop/latency cost pair — the
// variant RangeBatch surfaces per-query latency through.
func (b *Blocked) rangeCost(lo, hi uint64, origin HostID) ([]uint64, core.Cost, error) {
	if lo > hi {
		return nil, core.Cost{}, fmt.Errorf("skipwebs: empty range [%d, %d]", lo, hi)
	}
	s0, s1 := b.st.of(lo), b.st.of(hi)
	if s0 == s1 {
		b.st.rlock(s0)
		keys, c, err := b.ws[s0].RangeCost(lo, hi, origin)
		b.st.runlock(s0)
		if err != nil {
			return keys, c, fmt.Errorf("skipwebs: %w", err)
		}
		return keys, c, nil
	}
	var keys []uint64
	var cost core.Cost
	for i := s0; i <= s1; i++ {
		b.st.rlock(i)
		ks, c, err := b.ws[i].RangeCost(lo, hi, origin)
		b.st.runlock(i)
		cost.Hops += c.Hops
		cost.Latency += c.Latency
		if err != nil {
			return keys, cost, fmt.Errorf("skipwebs: %w", err)
		}
		keys = append(keys, ks...)
	}
	return keys, cost, nil
}

// Insert adds a key, returning the update's message cost — O(log n /
// log M) expected messages (Section 4): updates confined to one
// stratum's co-located copies cost a single message per stratum. The
// update holds only its stripe's writer lock.
func (b *Blocked) Insert(key uint64, origin HostID) (int, error) {
	i := b.st.of(key)
	b.st.wlock(i)
	defer b.st.wunlock(i)
	if b.nb != nil {
		b.nb.add(i, hashKey64(key))
	}
	h, err := b.ws[i].Insert(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// Delete removes a key, returning the update's message cost — O(log n /
// log M) expected messages (Section 4); blocks keep directory slack
// rather than merging, as the paper amortizes. The update holds only
// its stripe's writer lock.
func (b *Blocked) Delete(key uint64, origin HostID) (int, error) {
	i := b.st.of(key)
	b.st.wlock(i)
	defer b.st.wunlock(i)
	h, err := b.ws[i].Delete(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// FloorBatch answers one floor query per element of qs concurrently (see
// the batch engine notes in batch.go). Results are in input order.
func (b *Blocked) FloorBatch(qs []uint64, origins []HostID) ([]FloorResult, error) {
	return runReadBatch(b.c, qs, origins, b.Floor)
}

// ContainsBatch answers one membership query per key concurrently.
func (b *Blocked) ContainsBatch(keys []uint64, origins []HostID) ([]ContainsResult, error) {
	return runReadBatch(b.c, keys, origins, func(k uint64, origin HostID) (ContainsResult, error) {
		ok, c, err := b.containsCost(k, origin)
		return ContainsResult{Found: ok, Hops: c.Hops, Latency: c.Latency}, err
	})
}

// RangeBatch answers one range query per element of rs concurrently.
func (b *Blocked) RangeBatch(rs []KeyRange, origins []HostID) ([]RangeResult, error) {
	return runReadBatch(b.c, rs, origins, func(r KeyRange, origin HostID) (RangeResult, error) {
		keys, c, err := b.rangeCost(r.Lo, r.Hi, origin)
		return RangeResult{Keys: keys, Hops: c.Hops, Latency: c.Latency}, err
	})
}

// InsertBatch adds the keys — one parallel writer per stripe, strict
// input order within each stripe — returning each update's message cost
// in input order. Sorted runs within an origin group take the fast
// path: one dispatch per run, with consecutive descents sharing their
// uncharged hyperlink resolutions and the ascending order making every
// level's index splice an amortized O(1) append (see the sorted-run
// notes in batch.go). A run straddling a stripe boundary splits at the
// separator into one run per stripe. Message accounting is identical to
// per-op inserts, counter for counter.
func (b *Blocked) InsertBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runInsertBatchKeys(b.c, keys, origins, b.st, b.Insert,
		func(stripe int, ks []uint64, origin HostID, hops []int, errs []error) {
			b.st.wlock(stripe)
			if b.nb != nil {
				for _, k := range ks {
					b.nb.add(stripe, hashKey64(k))
				}
			}
			b.ws[stripe].InsertRun(ks, origin, hops, errs)
			b.st.wunlock(stripe)
			for i, err := range errs {
				if err != nil {
					errs[i] = fmt.Errorf("skipwebs: %w", err)
				}
			}
		})
}

// DeleteBatch removes the keys — one parallel writer per stripe, strict
// input order within each stripe — returning each update's message cost
// in input order.
func (b *Blocked) DeleteBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runWriteBatch(b.c, keys, origins, b.st, func(k uint64) uint64 { return k }, b.Delete)
}

// rehome and rebalance are the churn hooks Cluster.Leave and
// Cluster.Join drive: whole blocks (and their co-located stratum
// copies) migrate between hosts, one message per storage unit moved.
func (b *Blocked) rehome(from HostID, op *sim.Op) {
	b.bumpChurn()
	for _, w := range b.ws {
		w.Rehome(from, op)
	}
}
func (b *Blocked) rebalance(onto HostID, op *sim.Op) {
	b.bumpChurn()
	for _, w := range b.ws {
		w.Rebalance(onto, op)
	}
}

// repair is the crash-recovery hook Cluster.Crash drives: re-replicate
// every under-replicated block from its surviving live replicas.
func (b *Blocked) repair(op *sim.Op) error {
	b.bumpChurn()
	return repairStripes(op, b.ws)
}

// restart is the durable-recovery hook Cluster.Restart drives: merkle-
// reconcile the restarted host's blocks against one live peer each.
func (b *Blocked) restart(h HostID, op *sim.Op) int {
	b.bumpChurn()
	n := 0
	for _, w := range b.ws {
		n += w.RestartHost(h, op)
	}
	return n
}

func (b *Blocked) kind() string { return "blocked" }

// CheckConsistent verifies the blocked web's invariants: sound level
// lists, child key sets partitioning their parents', ordered block
// directories, and every block on a live host. Cost: O(n log n) local
// work, no messages.
func (b *Blocked) CheckConsistent() error {
	for _, w := range b.ws {
		if err := w.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// Bucketed is the bucket skip-web (Table 1, last row): H < n hosts, each
// holding a contiguous run of ~n/H keys, with a blocked skip-web routing
// over the bucket separators. Queries and updates cost Õ(log_M H)
// messages — expected constant when M = n^ε.
type Bucketed struct {
	c  *Cluster
	st *stripeSet
	ws []*core.BucketWeb
	readPath
}

// NewBucketed builds the bucket skip-web over keys (distinct). With
// Options.WriteStripes > 1 it builds one independent sub-web per key
// stripe (see the Options.WriteStripes doc).
func NewBucketed(c *Cluster, keys []uint64, opts Options) (*Bucketed, error) {
	target := opts.BucketSize
	if target <= 0 {
		target = len(keys)/c.Hosts() + 1
	}
	st, parts := splitKeysByStripe(keys, opts.WriteStripes)
	done := c.beginBuild(opts)
	ws := make([]*core.BucketWeb, st.n())
	for i, part := range parts {
		w, err := core.NewBucketWeb(c.network(), part, target, opts.M,
			stripeSeed(opts.Seed, i, st.n()), opts.Replicas)
		if err != nil {
			done()
			return nil, fmt.Errorf("skipwebs: %w", err)
		}
		ws[i] = w
	}
	done()
	b := &Bucketed{c: c, st: st, ws: ws, readPath: newReadPath(opts, st, partSizes(parts))}
	if b.nb != nil {
		for i, part := range parts {
			for _, k := range part {
				b.nb.add(i, hashKey64(k))
			}
		}
	}
	c.attach(b)
	return b, nil
}

// Len returns the number of stored keys.
func (b *Bucketed) Len() int {
	n := 0
	for i := range b.ws {
		b.st.rlock(i)
		n += b.ws[i].Len()
		b.st.runlock(i)
	}
	return n
}

// NumBuckets returns the number of buckets (summed over stripes).
func (b *Bucketed) NumBuckets() int {
	n := 0
	for i := range b.ws {
		b.st.rlock(i)
		n += b.ws[i].NumBuckets()
		b.st.runlock(i)
	}
	return n
}

// Floor answers a nearest-neighbor (floor) query from the given host in
// Õ(log_M H) expected messages (Table 1, last row): a routed query over
// the H bucket separators plus one hop into the bucket — expected
// constant when M = n^ε. Under write striping the query descends its
// owning stripe and falls back across lower stripes when that stripe
// holds no key at or below the query.
func (b *Bucketed) Floor(q uint64, origin HostID) (FloorResult, error) {
	key := cacheKey{op: opFloor, code: q}
	var sum uint64
	if b.rc != nil {
		if v, ok := b.rc.get(origin, key); ok {
			return v.(FloorResult), nil
		}
		sum = b.rc.churnNow()
	}
	i0 := b.st.of(q)
	var cost core.Cost
	for i := i0; ; i-- {
		b.st.rlock(i)
		if b.rc != nil {
			sum += uint64(b.st.writeCount(i))
		}
		k, ok, c, err := b.ws[i].QueryCost(q, origin)
		b.st.runlock(i)
		cost.Hops += c.Hops
		cost.Latency += c.Latency
		if err != nil {
			return FloorResult{Hops: cost.Hops, Latency: cost.Latency}, fmt.Errorf("skipwebs: %w", err)
		}
		if ok {
			if b.rc != nil {
				b.rc.put(origin, key, FloorResult{Key: k, Found: true}, i, i0, sum)
			}
			return FloorResult{Key: k, Found: true, Hops: cost.Hops, Latency: cost.Latency}, nil
		}
		if i == 0 {
			if b.rc != nil {
				b.rc.put(origin, key, FloorResult{}, 0, i0, sum)
			}
			return FloorResult{Found: false, Hops: cost.Hops, Latency: cost.Latency}, nil
		}
	}
}

// Contains reports whether key is stored, with the query's message cost
// — Õ(log_M H) expected messages, the same bound as Floor. Exact
// membership needs only the stripe owning the key, so no cross-stripe
// fallback is charged.
func (b *Bucketed) Contains(key uint64, origin HostID) (bool, int, error) {
	found, c, err := b.containsCost(key, origin)
	return found, c.Hops, err
}

// containsCost is Contains returning the full hop/latency cost pair —
// the variant ContainsBatch surfaces per-query latency through.
func (b *Bucketed) containsCost(key uint64, origin HostID) (bool, core.Cost, error) {
	i := b.st.of(key)
	if b.nb != nil && b.nb.definitelyAbsent(origin, i, hashKey64(key)) {
		return false, core.Cost{}, nil
	}
	ck := cacheKey{op: opContains, code: key}
	var sum uint64
	if b.rc != nil {
		if v, ok := b.rc.get(origin, ck); ok {
			return v.(bool), core.Cost{}, nil
		}
		sum = b.rc.churnNow()
	}
	b.st.rlock(i)
	if b.rc != nil {
		sum += uint64(b.st.writeCount(i))
	}
	kk, ok, c, err := b.ws[i].QueryCost(key, origin)
	b.st.runlock(i)
	if err != nil {
		return false, c, fmt.Errorf("skipwebs: %w", err)
	}
	found := ok && kk == key
	if b.nb != nil && !found {
		b.nb.falsePositive(origin)
	}
	if b.rc != nil {
		b.rc.put(origin, ck, found, i, i, sum)
	}
	return found, c, nil
}

// Range returns every stored key in [lo, hi] in ascending order, plus
// the message cost: one routed floor query plus one message per bucket
// visited, within every stripe the interval overlaps.
func (b *Bucketed) Range(lo, hi uint64, origin HostID) ([]uint64, int, error) {
	keys, c, err := b.rangeCost(lo, hi, origin)
	return keys, c.Hops, err
}

// rangeCost is Range returning the full hop/latency cost pair — the
// variant RangeBatch surfaces per-query latency through.
func (b *Bucketed) rangeCost(lo, hi uint64, origin HostID) ([]uint64, core.Cost, error) {
	if lo > hi {
		return nil, core.Cost{}, fmt.Errorf("skipwebs: empty range [%d, %d]", lo, hi)
	}
	s0, s1 := b.st.of(lo), b.st.of(hi)
	if s0 == s1 {
		b.st.rlock(s0)
		keys, c, err := b.ws[s0].RangeCost(lo, hi, origin)
		b.st.runlock(s0)
		if err != nil {
			return keys, c, fmt.Errorf("skipwebs: %w", err)
		}
		return keys, c, nil
	}
	var keys []uint64
	var cost core.Cost
	for i := s0; i <= s1; i++ {
		b.st.rlock(i)
		ks, c, err := b.ws[i].RangeCost(lo, hi, origin)
		b.st.runlock(i)
		cost.Hops += c.Hops
		cost.Latency += c.Latency
		if err != nil {
			return keys, cost, fmt.Errorf("skipwebs: %w", err)
		}
		keys = append(keys, ks...)
	}
	return keys, cost, nil
}

// Insert adds a key, returning the update's message cost — Õ(log_M H)
// expected messages: a routed floor query plus one hop into the bucket,
// with amortized separator insertions on bucket splits. The update
// holds only its stripe's writer lock.
func (b *Bucketed) Insert(key uint64, origin HostID) (int, error) {
	i := b.st.of(key)
	b.st.wlock(i)
	defer b.st.wunlock(i)
	if b.nb != nil {
		b.nb.add(i, hashKey64(key))
	}
	h, err := b.ws[i].Insert(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// Delete removes a key, returning the update's message cost — Õ(log_M
// H) expected messages; separators persist, as in the bucket skip
// graph. The update holds only its stripe's writer lock.
func (b *Bucketed) Delete(key uint64, origin HostID) (int, error) {
	i := b.st.of(key)
	b.st.wlock(i)
	defer b.st.wunlock(i)
	h, err := b.ws[i].Delete(key, origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// FloorBatch answers one floor query per element of qs concurrently (see
// the batch engine notes in batch.go). Results are in input order.
func (b *Bucketed) FloorBatch(qs []uint64, origins []HostID) ([]FloorResult, error) {
	return runReadBatch(b.c, qs, origins, b.Floor)
}

// ContainsBatch answers one membership query per key concurrently.
func (b *Bucketed) ContainsBatch(keys []uint64, origins []HostID) ([]ContainsResult, error) {
	return runReadBatch(b.c, keys, origins, func(k uint64, origin HostID) (ContainsResult, error) {
		ok, c, err := b.containsCost(k, origin)
		return ContainsResult{Found: ok, Hops: c.Hops, Latency: c.Latency}, err
	})
}

// RangeBatch answers one range query per element of rs concurrently.
func (b *Bucketed) RangeBatch(rs []KeyRange, origins []HostID) ([]RangeResult, error) {
	return runReadBatch(b.c, rs, origins, func(r KeyRange, origin HostID) (RangeResult, error) {
		keys, c, err := b.rangeCost(r.Lo, r.Hi, origin)
		return RangeResult{Keys: keys, Hops: c.Hops, Latency: c.Latency}, err
	})
}

// InsertBatch adds the keys — one parallel writer per stripe, strict
// input order within each stripe — returning each update's message cost
// in input order. Sorted runs within an origin group are dispatched as
// one unit (see the sorted-run notes in batch.go); accounting is
// identical to per-op inserts.
func (b *Bucketed) InsertBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runInsertBatchKeys(b.c, keys, origins, b.st, b.Insert,
		func(stripe int, ks []uint64, origin HostID, hops []int, errs []error) {
			b.st.wlock(stripe)
			defer b.st.wunlock(stripe)
			for i, k := range ks {
				if b.nb != nil {
					b.nb.add(stripe, hashKey64(k))
				}
				h, err := b.ws[stripe].Insert(k, origin)
				hops[i] = h
				if err != nil {
					errs[i] = fmt.Errorf("skipwebs: %w", err)
				}
			}
		})
}

// DeleteBatch removes the keys — one parallel writer per stripe, strict
// input order within each stripe — returning each update's message cost
// in input order.
func (b *Bucketed) DeleteBatch(keys []uint64, origins []HostID) ([]int, error) {
	return runWriteBatch(b.c, keys, origins, b.st, func(k uint64) uint64 { return k }, b.Delete)
}

// rehome and rebalance are the churn hooks Cluster.Leave and
// Cluster.Join drive: the separator routing web migrates like a blocked
// web, and each bucket moves as one unit of ~n/H keys, one message per
// key moved.
func (b *Bucketed) rehome(from HostID, op *sim.Op) {
	b.bumpChurn()
	for _, w := range b.ws {
		w.Rehome(from, op)
	}
}
func (b *Bucketed) rebalance(onto HostID, op *sim.Op) {
	b.bumpChurn()
	for _, w := range b.ws {
		w.Rebalance(onto, op)
	}
}

// repair is the crash-recovery hook Cluster.Crash drives: re-replicate
// the routing web and every under-replicated bucket from surviving
// live replicas.
func (b *Bucketed) repair(op *sim.Op) error {
	b.bumpChurn()
	return repairStripes(op, b.ws)
}

// restart is the durable-recovery hook Cluster.Restart drives: merkle-
// reconcile the restarted host's routing-web blocks and buckets against
// one live peer each.
func (b *Bucketed) restart(h HostID, op *sim.Op) int {
	b.bumpChurn()
	n := 0
	for _, w := range b.ws {
		n += w.RestartHost(h, op)
	}
	return n
}

func (b *Bucketed) kind() string { return "bucketed" }

// CheckConsistent verifies the separator web's invariants plus the
// bucket directory: every bucket keyed by its separator, sorted, on a
// live host, and in one-to-one correspondence with the routing web's
// ground list. Cost: O(n log n) local work, no messages.
func (b *Bucketed) CheckConsistent() error {
	for _, w := range b.ws {
		if err := w.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}
