// Package skipwebs implements skip-webs, the randomized distributed data
// structures of Arge, Eppstein, and Goodrich ("Skip-Webs: Efficient
// Distributed Data Structures for Multi-Dimensional Data Sets", PODC
// 2005), together with the substrate structures and baselines the paper
// builds on and compares against.
//
// A skip-web stores a data set across the hosts of a peer-to-peer
// network and routes queries host-to-host. The framework applies to any
// "range-determined link structure" with a set-halving lemma; this
// package provides the paper's four instantiations:
//
//   - OneDim / Blocked / Bucketed — sorted sets with floor
//     (nearest-neighbor) queries. Blocked applies the paper's Section
//     2.4.1 blocking for O(log n / log log n) expected messages;
//     Bucketed additionally stores n/H keys per host for Õ(log_M H).
//   - Points — compressed quadtrees/octrees over d-dimensional integer
//     points with point-location queries (Section 3.1).
//   - Strings — compressed tries over fixed-alphabet strings with
//     exact-match and prefix queries (Section 3.2).
//   - Planar — trapezoidal maps of non-crossing segments with planar
//     point location (Section 3.3; static).
//
// All structures run on a simulated message-passing network that counts
// every cross-host hop, so the Hops values returned by queries and
// updates are exactly the message complexity the paper bounds. Per-host
// storage and congestion are tracked on the same network and exposed via
// Cluster.Stats.
package skipwebs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/sim"
	"github.com/skipwebs/skipwebs/internal/wire"
)

// HostID identifies a host in a Cluster. IDs are never reused: a host
// that leaves keeps its id (and its place in the traffic history), and a
// joining host always gets a fresh id.
type HostID = sim.HostID

// ErrHostDown is the sentinel error for operations that needed a
// crashed host: a query whose every replica of some unit is dead, or a
// batch operation whose rendezvous host died. Match with errors.Is; the
// concrete error names the host. No messages beyond those already
// charged are spent on a failed operation.
var ErrHostDown = sim.ErrHostDown

// DataLossError is returned by Cluster.Crash when the crash exceeded
// the replication factor's tolerance: some units had no surviving live
// replica and are unrecoverable. Queries needing them keep failing fast
// with ErrHostDown; all other data remains fully served.
type DataLossError = core.DataLossError

// ErrTimeout is the sentinel error for calls that exceeded the per-call
// deadline configured with Cluster.SetDoTimeout: a dead or wedged host
// returns a typed timeout instead of hanging the client forever. Match
// with errors.Is; the concrete error is a TimeoutError naming the host.
var ErrTimeout = sim.ErrTimeout

// TimeoutError reports that a dispatched operation did not complete
// within the configured deadline. The task is abandoned, not cancelled —
// it may still execute if the host recovers; only the caller's wait is
// bounded. No messages beyond those already charged are spent.
type TimeoutError = sim.TimeoutError

// Transport is the host-execution contract batch dispatch runs on: run
// a closure on a host's worker (synchronously or send-and-continue), fan
// a batch out, and manage worker lifecycle across churn. Two
// implementations exist — the in-process simulator (NewCluster) and a
// loopback TCP transport whose dispatch rides length-prefixed frames
// (NewWireCluster) — with identical semantics and identical message
// accounting, pinned by the conformance suite in internal/wire. Cost
// model note: dispatch itself is never charged as messages in either
// implementation; only the hops a routed operation makes (Op.Visit/Send)
// count, so msgs/op is transport-invariant.
type Transport = sim.Transport

// migrator is the churn and fault-tolerance contract every structure
// registers with its Cluster at construction: migrate everything off a
// departing host, pick up a fair share of load for a joining host,
// re-replicate under-replicated units after a crash, reconcile a
// durably restarted host's shard, and verify internal consistency. All
// hooks run under the cluster's write lock.
type migrator interface {
	rehome(from HostID, op *sim.Op)
	rebalance(onto HostID, op *sim.Op)
	repair(op *sim.Op) error
	// restart merkle-reconciles host h's replicas after a durable
	// restart, returning the storage units re-copied.
	restart(h HostID, op *sim.Op) int
	// kind names the structure for per-structure loss reporting.
	kind() string
	CheckConsistent() error
}

// Cluster is a failure-free peer-to-peer network of hosts with message,
// storage, and congestion accounting. All structures attached to a
// Cluster share its hosts and counters.
//
// A Cluster also owns the concurrent batch engine: the first batch call
// (FloorBatch, LocateBatch, InsertBatch, ...) on any attached structure
// starts one worker goroutine per host, and batches execute their
// operations on the origin hosts' workers via send-and-continue message
// passing. Read batches from all structures run fully in parallel, update
// batches run one writer per key-range stripe (Options.WriteStripes;
// single writer per stripe), and churn serializes against everything.
// Call Close to stop the workers when batches have been used.
type Cluster struct {
	net *sim.Network

	// mu is the churn lock over every structure attached to this
	// cluster: read AND write batches hold RLock — fine-grained
	// exclusion between them lives in each structure's per-key-range
	// write stripes (stripes.go) — while churn events (Join, Leave,
	// Crash, Restart, Repair) and Close hold Lock, draining every
	// in-flight batch. Synchronous (non-batch) calls take stripe locks
	// but not mu; do not run them concurrently with churn.
	mu sync.RWMutex

	// structs are the attached structures, in construction order; churn
	// migrates each in turn.
	structs []migrator

	workersOnce sync.Once
	workers     Transport
	// doTimeout is applied to the transport at creation and on
	// SetDoTimeout (0 = wait forever).
	doTimeout time.Duration
}

// CostModel is the pluggable per-link latency model of the accounting
// spine: a pure function from an ordered host pair to a latency, in
// abstract model units (read them as microseconds). Install one with
// WithLatency (or Options.Latency) and every charged message accumulates
// its sampled link cost onto the operation's critical path — sequential
// hops add, replicated write-through fan-outs pay the max over mirrors —
// while every existing counter (hops, messages, storage, congestion)
// stays untouched. Purity is load-bearing: identical seeds give
// identical per-operation latencies regardless of GOMAXPROCS, batch
// grouping, or stripe count. Construct models with FixedLatency,
// UniformLatency, LogNormalLatency, and TwoLevelLatency.
type CostModel = sim.CostModel

// FixedLatency returns the constant-cost model: every cross-host
// message costs c units. FixedLatency(0) measures latency machinery with
// zero cost; a nil model skips the machinery entirely.
func FixedLatency(c int64) CostModel { return sim.Fixed(c) }

// UniformLatency returns a model whose per-link cost is a fixed uniform
// sample in [lo, hi], drawn once per ordered host pair from the seed.
func UniformLatency(seed uint64, lo, hi int64) CostModel { return sim.Uniform(seed, lo, hi) }

// LogNormalLatency returns a model whose per-link cost is a fixed
// LogNormal(mu, sigma) sample per ordered host pair — the heavy-tailed
// WAN regime where hop counts and critical-path latency diverge.
func LogNormalLatency(seed uint64, mu, sigma float64) CostModel {
	return sim.LogNormal(seed, mu, sigma)
}

// TwoLevelLatency returns the 2-level rack/region topology model: hosts
// h and g share a rack when h/rackSize == g/rackSize, intra-rack links
// cost intra.Link, cross-rack links cost inter.Link.
func TwoLevelLatency(rackSize int, intra, inter CostModel) CostModel {
	return sim.TwoLevel(rackSize, intra, inter)
}

// ClusterOption configures a Cluster at construction.
type ClusterOption func(*Cluster)

// WithLatency installs m as the cluster's per-link latency model before
// any traffic flows. Nil leaves the default zero-latency accounting,
// which is bit-identical — counter for counter — to a cluster built
// without the option.
func WithLatency(m CostModel) ClusterOption {
	return func(c *Cluster) { c.net.SetCostModel(m) }
}

// NewCluster creates a cluster of h hosts. It panics if h <= 0.
func NewCluster(h int, opts ...ClusterOption) *Cluster {
	c := &Cluster{net: sim.NewNetwork(h)}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// NewWireCluster creates a cluster of h hosts whose batch dispatch rides
// a real loopback TCP transport: every Do/Go dispatch crosses a
// length-prefixed frame to the target host's listener instead of an
// in-process mailbox. Queries, updates, accounting, and results are
// bit-identical to NewCluster — the Transport contract guarantees it —
// so this is the drop-in way to exercise the public API over real
// sockets. It returns an error when the loopback listeners cannot be
// opened. Call Close to release the sockets.
func NewWireCluster(h int, opts ...ClusterOption) (*Cluster, error) {
	c := NewCluster(h, opts...)
	// Open the transport eagerly so listener failures surface here as an
	// error rather than as a panic at first batch, and so Close always
	// releases the sockets even if no batch ever runs.
	t, err := wire.NewLoopback(h)
	if err != nil {
		return nil, fmt.Errorf("skipwebs: wire transport: %w", err)
	}
	c.workersOnce.Do(func() { c.workers = t })
	return c, nil
}

// SetDoTimeout bounds every dispatched operation (batch queries and
// updates) to d: a dead or wedged host yields a TimeoutError (matching
// ErrTimeout via errors.Is) for the affected operations instead of
// blocking the batch forever. Zero or negative restores the default of
// waiting indefinitely. The in-flight task is not cancelled — only the
// caller's wait is bounded.
func (c *Cluster) SetDoTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.doTimeout = d
	if c.workers != nil {
		c.workers.SetDoTimeout(d)
	}
}

// Hosts returns the number of live hosts. Like every accessor that
// reads the host set, it takes the cluster's read lock so it is safe
// against concurrent Join/Leave.
func (c *Cluster) Hosts() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.LiveHosts()
}

// HostAt returns the i-th live host in ascending id order (i taken
// modulo the live count) — the churn-safe way to choose an origin host,
// since after a Leave the live ids are no longer contiguous. Before any
// churn, HostAt(i) == HostID(i).
func (c *Cluster) HostAt(i int) HostID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i %= c.net.LiveHosts()
	if i < 0 {
		i += c.net.LiveHosts()
	}
	return c.net.LiveAt(i)
}

// StorageQuantiles returns the q-quantiles (e.g. 0.5, 0.99, 1.0) of the
// per-live-host storage distribution, in the order requested — the load
// profile churn rebalancing is judged by.
func (c *Cluster) StorageQuantiles(qs ...float64) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.net.StorageQuantiles(qs...)
}

// attach registers a structure for churn migration and consistency
// checking. Every structure constructor calls it.
func (c *Cluster) attach(m migrator) {
	c.mu.Lock()
	c.structs = append(c.structs, m)
	c.mu.Unlock()
}

// beginBuild prepares the cluster for a structure build and returns the
// completion hook the constructor must call when the build is done.
// With opts.Durable set, the cluster-wide durable storage model is
// enabled (idempotent — the first durable structure turns it on for
// every host, and it stays on for the cluster's lifetime) and paused for
// the duration of the build: bulk construction charges storage only,
// exactly like the non-durable path, and the finished structure is
// folded into one fresh checkpoint per host instead of n WAL appends.
// Builds on an already-durable cluster pause the same way regardless of
// their own flag. With opts.Latency set, the cluster-wide latency model
// is installed (also idempotent: the first model wins, like
// WithLatency at construction) before the build's traffic flows.
func (c *Cluster) beginBuild(opts Options) func() {
	if opts.Latency != nil && c.net.CostModel() == nil {
		c.net.SetCostModel(opts.Latency)
	}
	if opts.Durable {
		c.net.EnableDurability(sim.DefaultCheckpointEvery)
	}
	if !c.net.Durable() {
		return func() {}
	}
	c.net.PauseDurability()
	return func() { c.net.ResumeDurability() }
}

// anyCrashed reports whether some host is currently down from a crash
// (as opposed to a clean Leave).
func (c *Cluster) anyCrashed() bool {
	for h := HostID(0); int(h) < c.net.Hosts(); h++ {
		if c.net.Crashed(h) {
			return true
		}
	}
	return false
}

// Join adds a fresh host to the cluster and returns its id. Every
// attached structure rebalances an expected 1/H share of its load onto
// the joiner, with each migration hop charged to the network — so churn
// cost is measurable in Stats exactly like query cost. Expected
// migration traffic is O(S/H) messages for S total storage units.
// Join blocks until in-flight batches drain (it takes the write lock).
func (c *Cluster) Join() HostID {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.net.AddHost()
	// After Close the worker pool is stopped but synchronous calls —
	// including churn — remain valid: the joiner simply gets no mailbox
	// (batches after Close panic anyway).
	if c.workers != nil && !c.workers.Stopped() {
		c.workers.AddHost(h)
	}
	op := c.net.NewOp(h)
	defer op.Free()
	for _, s := range c.structs {
		s.rebalance(h, op)
	}
	// A join can raise the feasible replica count (min(Replicas, live)):
	// top under-replicated units back up. On an unreplicated or fully
	// replicated cluster this is a read-only scan. Pre-existing data
	// loss (a crash that exceeded the tolerance before this join) is
	// not the joiner's news to deliver — Crash already reported it.
	// On a durable cluster with a host down, the top-up would amount to
	// giving up on the crashed host (re-homing its replicas and
	// discharging its disk image), which is Repair's explicit call to
	// make, not a side effect of someone else joining — so it is skipped
	// until every crashed host is restarted or repaired away.
	if !(c.net.Durable() && c.anyCrashed()) {
		for _, s := range c.structs {
			_ = s.repair(op)
		}
	}
	return h
}

// Crash removes host h the unclean way: no migration happens, the
// host's data dies with it, its mailbox (if the batch worker pool is
// running) is dropped, and the host joins the failed set that query
// routing consults for failover. Crash blocks until in-flight batches
// drain (it takes the write lock), so batches never observe the drop
// itself; afterwards the crashed host is rejected as a batch origin,
// and queries that need a unit with no live replica fail fast with
// ErrHostDown. (The mailbox-drop fail-fast rendezvous contract is the
// sim layer's: users driving sim.Cluster directly, without this
// cluster's locking, get the typed error instead of a hang.) Every
// attached structure then runs its Repair pass, re-replicating each
// surviving unit back to min(Replicas, live) copies — one message per
// storage unit copied, charged to the cluster like any traffic.
//
// With Options.Replicas k and at most k-1 crashes between repairs, no
// data is lost and every query keeps answering exactly as before. A
// crash beyond that tolerance returns a DataLossError naming how many
// units are unrecoverable; the cluster keeps serving everything else.
// Crash fails on a host that is not live and on the last live host, and
// blocks until in-flight batches drain (it takes the write lock).
//
// On a durable cluster (Options.Durable) the crashed host's disk image
// survives and no automatic repair runs: the host is expected back via
// Restart, which replays its WAL and merkle-reconciles anything it
// missed. Call Repair to give up on it instead; until one or the
// other, queries fail over to live replicas exactly as above.
func (c *Cluster) Crash(h HostID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.net.Alive(h) {
		return fmt.Errorf("skipwebs: host %d is not a live host", h)
	}
	if c.net.LiveHosts() == 1 {
		return fmt.Errorf("skipwebs: cannot crash the last live host %d", h)
	}
	c.net.Crash(h)
	if c.workers != nil && !c.workers.Stopped() {
		c.workers.Crash(h)
	}
	if c.net.Durable() {
		return nil // the host is expected back: Restart or Repair decides
	}
	// Repair is coordinated by the survivors; the op starts unplaced
	// (sim.None) so the first copy source is not double-charged.
	op := c.net.NewOp(sim.None)
	defer op.Free()
	return c.repairAll(op)
}

// repairAll runs every structure's repair pass and aggregates the
// outcome. Per-structure data losses are summed into one DataLossError
// so errors.As reports the cluster-wide count, the union of dead hosts
// involved, and the per-structure breakdown; Units is a snapshot of
// every unit currently without a live replica, so after repeated
// over-tolerance crashes the latest error carries the cumulative loss
// (earlier losses stay lost and are re-reported).
func (c *Cluster) repairAll(op *sim.Op) error {
	lost := 0
	var deadHosts map[HostID]bool
	var structures map[string]int
	var errs []error
	for _, s := range c.structs {
		err := s.repair(op)
		var dl *DataLossError
		switch {
		case err == nil:
		case errors.As(err, &dl):
			lost += dl.Units
			if structures == nil {
				structures = make(map[string]int)
			}
			structures[s.kind()] += dl.Units
			for _, dh := range dl.Hosts {
				if deadHosts == nil {
					deadHosts = make(map[HostID]bool)
				}
				deadHosts[dh] = true
			}
		default:
			errs = append(errs, err)
		}
	}
	if lost > 0 {
		hosts := make([]HostID, 0, len(deadHosts))
		for dh := range deadHosts {
			hosts = append(hosts, dh)
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		errs = append(errs, &DataLossError{Units: lost, Hosts: hosts, Structures: structures})
	}
	return errors.Join(errs...)
}

// Repair explicitly gives up on crashed hosts: every structure
// re-replicates its under-replicated units from surviving live
// replicas, dead replica slots are dropped for good (on a durable
// cluster their disk images are discharged, so a later Restart of the
// host comes back without the units repair re-homed), and units with no
// surviving replica are reported via a DataLossError naming the unit
// count, the dead hosts involved, and the per-structure breakdown. On a
// non-durable cluster Crash runs this automatically; here it is the
// deliberate "the host is not coming back" decision. Repair blocks
// until in-flight batches drain (it takes the write lock).
func (c *Cluster) Repair() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	op := c.net.NewOp(sim.None)
	defer op.Free()
	return c.repairAll(op)
}

// RestartStats reports what bringing a crashed durable host back cost.
type RestartStats struct {
	// ReplayMsgs counts the local recovery messages: one checkpoint
	// load plus one per WAL record replayed on top of it.
	ReplayMsgs int
	// MerkleMsgs counts the reconcile traffic: per-peer merkle digest
	// exchanges plus the diverged payloads re-shipped.
	MerkleMsgs int
	// CopiedUnits counts the storage units re-copied from peers — zero
	// when nothing diverged while the host was down.
	CopiedUnits int
}

// Restart brings crashed host h back on a durable cluster: the host
// reloads its last checkpoint and replays its write-ahead log (storage
// restored exactly, one charged message per replay step), rejoins the
// live set, and merkle-reconciles each structure's replicas with one
// live peer per unit — an O(divergence · log n)-message walk that
// re-copies only what changed while the host was down, instead of the
// full re-replication Repair pays. A host that missed nothing proves
// its shard clean with one digest exchange per peer and copies zero
// units. Restart fails on a non-durable cluster and on a host that is
// not crashed. A host already given up via Repair may still Restart:
// its image was discharged by the repair, so it rejoins live but
// empty, like a fresh host. Restart blocks until in-flight batches
// drain (it takes the write lock).
func (c *Cluster) Restart(h HostID) (RestartStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.net.Durable() {
		return RestartStats{}, fmt.Errorf("skipwebs: Restart(%d): cluster is not durable (set Options.Durable)", h)
	}
	if !c.net.Crashed(h) {
		return RestartStats{}, fmt.Errorf("skipwebs: Restart(%d): host is not crashed", h)
	}
	replay := c.net.Restart(h)
	if c.workers != nil && !c.workers.Stopped() {
		c.workers.Restart(h)
	}
	op := c.net.NewOp(sim.None)
	defer op.Free()
	copied := 0
	for _, s := range c.structs {
		copied += s.restart(h, op)
	}
	return RestartStats{ReplayMsgs: replay, MerkleMsgs: op.Hops(), CopiedUnits: copied}, nil
}

// Leave removes host h from the cluster after migrating every node,
// block, and bucket it stores onto surviving hosts — expected O(S/H)
// messages for S total storage units, all charged to the network. The
// host's id is retired, never reused. Leave fails on a host that is not
// live and on the last live host, and blocks until in-flight batches
// drain (it takes the write lock).
func (c *Cluster) Leave(h HostID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.net.Alive(h) {
		return fmt.Errorf("skipwebs: host %d is not a live host", h)
	}
	if c.net.LiveHosts() == 1 {
		return fmt.Errorf("skipwebs: cannot remove the last live host %d", h)
	}
	c.net.RemoveHost(h)
	op := c.net.NewOp(h)
	defer op.Free()
	for _, s := range c.structs {
		s.rehome(h, op)
	}
	// Complete the teardown (mailbox drained and closed) before the
	// drain audit below, so even its failure path leaves no half-applied
	// churn state behind. The worker guard matches Join: after Close
	// there is no mailbox, and a host that joined post-Close never had
	// one.
	if c.workers != nil && !c.workers.Stopped() {
		c.workers.RemoveHost(h)
	}
	// A non-zero residual means a structure's storage accounting is
	// broken, not that the caller misused the API: the departure itself
	// has fully taken effect, and the error exists to make the
	// accounting bug loud (the churn tests assert it never fires).
	if left := c.net.Storage(h); left != 0 {
		return fmt.Errorf("skipwebs: host %d still holds %d storage units after migration (storage accounting bug)", h, left)
	}
	return nil
}

// CheckConsistent verifies the invariants of every structure attached to
// the cluster: complete and live host placement, hyperlinks that match
// recomputation, and per-level item counts that add up. It is the churn
// acceptance check — after any Join/Leave sequence it must return nil.
func (c *Cluster) CheckConsistent() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, s := range c.structs {
		if err := s.CheckConsistent(); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes cluster-wide accounting. The cache fields aggregate
// the read-path counters (Options.CacheFingers / Options.NegativeBloom)
// over every structure and origin host; they stay zero with the caches
// off.
type Stats struct {
	Hosts          int
	TotalMessages  int64
	TotalOps       int64
	MaxStorage     int64
	MeanStorage    float64
	MaxCongestion  int64
	MeanCongestion float64
	// CacheHits counts queries answered from a finger cache for zero
	// charged messages; CacheMisses counts lookups that ran the full
	// descent, CacheInvalidations the entries evicted by a failed epoch
	// check (write or churn on their stripes).
	CacheHits          int64
	CacheMisses        int64
	CacheInvalidations int64
	// BloomTrueNegatives counts membership queries answered "definitely
	// absent" at the origin; BloomFalsePositives counts absent keys the
	// bloom let through to a full descent.
	BloomTrueNegatives  int64
	BloomFalsePositives int64
	// Latency summary of completed operations under the cluster's
	// latency model (Options.Latency / WithLatency), in model units —
	// all zeros without a model. LatencyOps counts every operation the
	// network completed (queries, updates, and churn alike); the
	// quantiles are log-bucketed, within 12.5% of exact. For exact
	// per-query latency use the Latency field of the query results.
	LatencyOps  int64
	LatencyMean float64
	LatencyP50  int64
	LatencyP99  int64
	LatencyMax  int64
}

// cacheStatser is implemented by every structure via the embedded
// readPath; Stats and CacheStatsByHost aggregate through it.
type cacheStatser interface {
	cacheStats() CacheStats
	cacheStatsByHost(byHost map[HostID]CacheStats, total *CacheStats)
}

// Stats returns the current cluster counters.
func (c *Cluster) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := c.net.Snapshot()
	out := Stats{
		Hosts:          s.Hosts,
		TotalMessages:  s.TotalMessages,
		TotalOps:       s.TotalOps,
		MaxStorage:     s.MaxStorage,
		MeanStorage:    s.MeanStorage,
		MaxCongestion:  s.MaxCongestion,
		MeanCongestion: s.MeanCongestion,
		LatencyOps:     s.LatencyOps,
		LatencyMean:    s.LatencyMean,
		LatencyP50:     s.LatencyP50,
		LatencyP99:     s.LatencyP99,
		LatencyMax:     s.LatencyMax,
	}
	for _, m := range c.structs {
		if cs, ok := m.(cacheStatser); ok {
			agg := cs.cacheStats()
			out.CacheHits += agg.Hits
			out.CacheMisses += agg.Misses
			out.CacheInvalidations += agg.Invalidations
			out.BloomTrueNegatives += agg.BloomTrueNegatives
			out.BloomFalsePositives += agg.BloomFalsePositives
		}
	}
	return out
}

// CacheStatsByHost returns the read-path cache counters per origin host,
// summed over every attached structure — the per-host observability the
// skew bench mode reports. Hosts that never originated a cached or
// bloom-screened query are absent; the map is empty with the caches off.
func (c *Cluster) CacheStatsByHost() map[HostID]CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[HostID]CacheStats)
	for _, m := range c.structs {
		if cs, ok := m.(cacheStatser); ok {
			cs.cacheStatsByHost(out, nil)
		}
	}
	return out
}

// ResetTraffic zeroes message and congestion counters while keeping
// storage, so query traffic can be measured separately from construction.
func (c *Cluster) ResetTraffic() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.net.ResetTraffic()
}

// WorkersStarted reports how many per-host worker goroutines the batch
// engine has actually launched. Workers start lazily on first use, so
// the count is bounded by the number of distinct hosts batch work has
// been dispatched to — not the cluster size — and is zero before the
// first batch. It is the scale-mode observability counter: a 10k-host
// cluster answering batches that touch 300 hosts runs 300 goroutines.
// No messages are charged.
func (c *Cluster) WorkersStarted() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.workers == nil {
		return 0
	}
	return c.workers.WorkersStarted()
}

// Close stops the per-host worker goroutines backing batch execution,
// draining any enqueued work first. Batch calls after Close panic;
// synchronous calls remain valid. Close is idempotent and free when no
// batch was ever run (the worker pool is never started just to be torn
// down).
func (c *Cluster) Close() {
	// Take the write lock so Close serializes with churn: without it, a
	// concurrent Join could spawn a worker between Stop's mailbox
	// snapshot and its wait, leaving Stop blocked on a mailbox it never
	// closed. In-flight batches (read lock) drain before Close proceeds.
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workersOnce.Do(func() {}) // ensure no pool can start after Close
	if c.workers != nil {
		c.workers.Stop()
	}
}

// cluster returns the per-host worker transport, starting it on first
// use: the in-process simulator by default, or the loopback TCP
// transport for a NewWireCluster. Everything above this point — batch
// dispatch, churn, crash semantics — speaks only to the Transport
// interface.
func (c *Cluster) cluster() Transport {
	c.workersOnce.Do(func() {
		c.workers = sim.NewCluster(c.net)
		if c.doTimeout > 0 {
			c.workers.SetDoTimeout(c.doTimeout)
		}
	})
	if c.workers == nil {
		panic("skipwebs: batch operation after Cluster.Close")
	}
	return c.workers
}

func (c *Cluster) network() *sim.Network { return c.net }
