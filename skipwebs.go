// Package skipwebs implements skip-webs, the randomized distributed data
// structures of Arge, Eppstein, and Goodrich ("Skip-Webs: Efficient
// Distributed Data Structures for Multi-Dimensional Data Sets", PODC
// 2005), together with the substrate structures and baselines the paper
// builds on and compares against.
//
// A skip-web stores a data set across the hosts of a peer-to-peer
// network and routes queries host-to-host. The framework applies to any
// "range-determined link structure" with a set-halving lemma; this
// package provides the paper's four instantiations:
//
//   - OneDim / Blocked / Bucketed — sorted sets with floor
//     (nearest-neighbor) queries. Blocked applies the paper's Section
//     2.4.1 blocking for O(log n / log log n) expected messages;
//     Bucketed additionally stores n/H keys per host for Õ(log_M H).
//   - Points — compressed quadtrees/octrees over d-dimensional integer
//     points with point-location queries (Section 3.1).
//   - Strings — compressed tries over fixed-alphabet strings with
//     exact-match and prefix queries (Section 3.2).
//   - Planar — trapezoidal maps of non-crossing segments with planar
//     point location (Section 3.3; static).
//
// All structures run on a simulated message-passing network that counts
// every cross-host hop, so the Hops values returned by queries and
// updates are exactly the message complexity the paper bounds. Per-host
// storage and congestion are tracked on the same network and exposed via
// Cluster.Stats.
package skipwebs

import (
	"sync"

	"github.com/skipwebs/skipwebs/internal/sim"
)

// HostID identifies a host in a Cluster.
type HostID = sim.HostID

// Cluster is a failure-free peer-to-peer network of hosts with message,
// storage, and congestion accounting. All structures attached to a
// Cluster share its hosts and counters.
//
// A Cluster also owns the concurrent batch engine: the first batch call
// (FloorBatch, LocateBatch, InsertBatch, ...) on any attached structure
// starts one worker goroutine per host, and batches execute their
// operations on the origin hosts' workers via send-and-continue message
// passing. Read batches from all structures run fully in parallel under a
// shared read lock; update batches take the write lock and serialize —
// single-writer/many-reader concurrency control. Call Close to stop the
// workers when batches have been used.
type Cluster struct {
	net *sim.Network

	// mu is the single-writer/many-reader lock over every structure
	// attached to this cluster: read batches hold RLock, update batches
	// hold Lock. Synchronous (non-batch) calls are not locked; do not run
	// them concurrently with batches.
	mu sync.RWMutex

	workersOnce sync.Once
	workers     *sim.Cluster
}

// NewCluster creates a cluster of h hosts. It panics if h <= 0.
func NewCluster(h int) *Cluster {
	return &Cluster{net: sim.NewNetwork(h)}
}

// Hosts returns the number of hosts.
func (c *Cluster) Hosts() int { return c.net.Hosts() }

// Stats summarizes cluster-wide accounting.
type Stats struct {
	Hosts          int
	TotalMessages  int64
	TotalOps       int64
	MaxStorage     int64
	MeanStorage    float64
	MaxCongestion  int64
	MeanCongestion float64
}

// Stats returns the current cluster counters.
func (c *Cluster) Stats() Stats {
	s := c.net.Snapshot()
	return Stats{
		Hosts:          s.Hosts,
		TotalMessages:  s.TotalMessages,
		TotalOps:       s.TotalOps,
		MaxStorage:     s.MaxStorage,
		MeanStorage:    s.MeanStorage,
		MaxCongestion:  s.MaxCongestion,
		MeanCongestion: s.MeanCongestion,
	}
}

// ResetTraffic zeroes message and congestion counters while keeping
// storage, so query traffic can be measured separately from construction.
func (c *Cluster) ResetTraffic() { c.net.ResetTraffic() }

// Close stops the per-host worker goroutines backing batch execution,
// draining any enqueued work first. Batch calls after Close panic;
// synchronous calls remain valid. Close is idempotent and free when no
// batch was ever run (the worker pool is never started just to be torn
// down).
func (c *Cluster) Close() {
	c.workersOnce.Do(func() {}) // ensure no pool can start after Close
	if c.workers != nil {
		c.workers.Stop()
	}
}

// cluster returns the per-host worker pool, starting it on first use.
func (c *Cluster) cluster() *sim.Cluster {
	c.workersOnce.Do(func() { c.workers = sim.NewCluster(c.net) })
	if c.workers == nil {
		panic("skipwebs: batch operation after Cluster.Close")
	}
	return c.workers
}

func (c *Cluster) network() *sim.Network { return c.net }
