module github.com/skipwebs/skipwebs

go 1.21
