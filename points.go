package skipwebs

import (
	"fmt"
	"sort"
	"sync"

	"github.com/skipwebs/skipwebs/internal/core"
	"github.com/skipwebs/skipwebs/internal/quadtree"
	"github.com/skipwebs/skipwebs/internal/sim"
)

// Point is a d-dimensional point with non-negative integer coordinates.
// Coordinates must be below 2^(62/d) per dimension (2^31 for d = 2, 2^20
// for d = 3).
type Point []uint32

// PointLocation is the answer to a point-location query in the quadtree
// subdivision: the deepest cell of the compressed quadtree containing the
// query point, per Section 3.1. Point-location answers support
// approximate nearest-neighbor and range queries (Eppstein et al.).
type PointLocation struct {
	// Leaf is true when the cell stores exactly one data point.
	Leaf bool
	// LeafPoint is that point when Leaf.
	LeafPoint Point
	// CellPrefix and CellBits identify the dyadic cell (a Morton-code
	// prefix of CellBits bits).
	CellPrefix uint64
	CellBits   int
	// Hops is the number of messages the query cost.
	Hops int
	// Latency is the query's modeled critical-path latency under the
	// cluster's latency model, in model units. Zero without a model and
	// zero on cache hits.
	Latency int64
}

// Points is a skip-web over a d-dimensional point set, built on
// compressed quadtrees (d = 2) or octrees (d >= 3): O(log n) expected
// messages per point-location query even when the underlying tree has
// depth Θ(n).
type Points struct {
	c   *Cluster
	ops *core.QuadOps
	st  *stripeSet
	ws  []*core.Web[*quadtree.Tree, quadtree.Point, uint64]
	readPath
}

// NewPoints builds a point-set skip-web of the given dimension
// (2 <= d <= 6) over distinct points. With Options.WriteStripes > 1 it
// builds one independent sub-web per Morton-code stripe (see the
// Options.WriteStripes doc): the Morton code is the same locational key
// the quadtree itself orders by, so each stripe is a contiguous band of
// the space-filling curve.
func NewPoints(c *Cluster, d int, points []Point, opts Options) (*Points, error) {
	if d < 2 || d > 6 {
		return nil, fmt.Errorf("skipwebs: dimension %d out of range [2, 6]", d)
	}
	ops := core.NewQuadOps(d)
	st, parts, err := splitPointsByStripe(ops, points, opts.WriteStripes)
	if err != nil {
		return nil, fmt.Errorf("skipwebs: %w", err)
	}
	done := c.beginBuild(opts)
	ws := make([]*core.Web[*quadtree.Tree, quadtree.Point, uint64], st.n())
	for i, part := range parts {
		// Each stripe web owns a private QuadOps: the adapter reuses
		// Change buffers across updates, which concurrent stripe writers
		// must not share. p.ops is kept only for Code, which is pure.
		stripeOps := ops
		if i > 0 {
			stripeOps = core.NewQuadOps(d)
		}
		w, werr := core.NewWeb[*quadtree.Tree, quadtree.Point, uint64](
			stripeOps, c.network(), part, core.Config{Seed: stripeSeed(opts.Seed, i, st.n()), Replicas: opts.Replicas})
		if werr != nil {
			done()
			return nil, fmt.Errorf("skipwebs: %w", werr)
		}
		ws[i] = w
	}
	done()
	p := &Points{c: c, ops: ops, st: st, ws: ws, readPath: newReadPath(opts, st, partSizes(parts))}
	if p.nb != nil {
		for i, part := range parts {
			for _, pt := range part {
				// Code is pure and already validated these points at build.
				if code, cerr := ops.Code(pt); cerr == nil {
					p.nb.add(i, hashKey64(code))
				}
			}
		}
	}
	c.attach(p)
	return p, nil
}

// splitPointsByStripe sorts the build points by Morton code, builds the
// stripe routing table, and returns the per-stripe chunks (as
// quadtree.Points). want <= 1 passes the input through unsorted — the
// exact pre-striping build input.
func splitPointsByStripe(ops *core.QuadOps, points []Point, want int) (*stripeSet, [][]quadtree.Point, error) {
	items := make([]quadtree.Point, len(points))
	for i, p := range points {
		items[i] = quadtree.Point(p)
	}
	if want <= 1 || len(items) <= 1 {
		return newStripeSet(nil, 1), [][]quadtree.Point{items}, nil
	}
	codes := make([]uint64, len(items))
	for i, it := range items {
		c, err := ops.Code(it)
		if err != nil {
			return nil, nil, err
		}
		codes[i] = c
	}
	sort.Sort(&pointsByCode{items: items, codes: codes})
	ss := newStripeSet(codes, want)
	parts := make([][]quadtree.Point, ss.n())
	start := 0
	for i := 0; i < ss.n(); i++ {
		end := start
		for end < len(items) && ss.of(codes[end]) == i {
			end++
		}
		parts[i] = items[start:end]
		start = end
	}
	return ss, parts, nil
}

// pointsByCode sorts points and their Morton codes in lockstep.
type pointsByCode struct {
	items []quadtree.Point
	codes []uint64
}

func (s *pointsByCode) Len() int           { return len(s.items) }
func (s *pointsByCode) Less(i, j int) bool { return s.codes[i] < s.codes[j] }
func (s *pointsByCode) Swap(i, j int) {
	s.items[i], s.items[j] = s.items[j], s.items[i]
	s.codes[i], s.codes[j] = s.codes[j], s.codes[i]
}

// stripeCode maps a point to its stripe code (its Morton code). An
// out-of-range point maps to stripe 0, whose engine then reports the
// same validation error the unsharded path would.
func (p *Points) stripeCode(q Point) uint64 {
	code, err := p.ops.Code(quadtree.Point(q))
	if err != nil {
		return 0
	}
	return code
}

// Len returns the number of stored points.
func (p *Points) Len() int {
	n := 0
	for i := range p.ws {
		p.st.rlock(i)
		n += p.ws[i].Len()
		p.st.runlock(i)
	}
	return n
}

// TreeDepth returns the depth of the underlying ground quadtree (the
// deepest stripe's, under write striping; may be Θ(n) for clustered
// inputs — queries stay O(log n) regardless).
func (p *Points) TreeDepth() int {
	depth := 0
	for i := range p.ws {
		p.st.rlock(i)
		if d := p.ws[i].GroundStructure().Depth(); d > depth {
			depth = d
		}
		p.st.runlock(i)
	}
	return depth
}

// Locate routes a point-location query from the given host in O(log n)
// expected messages (Theorem 2 via Lemma 3), independent of the tree
// depth — the skip-web's advantage over walking the quadtree itself.
// Under write striping the query descends the stripe owning the point's
// Morton code; the located cell is that stripe's deepest cell containing
// the query, which is the subdivision cell of the stripe's curve band.
func (p *Points) Locate(q Point, origin HostID) (PointLocation, error) {
	code, err := p.ops.Code(quadtree.Point(q))
	if err != nil {
		return PointLocation{}, fmt.Errorf("skipwebs: %w", err)
	}
	// The Morton code is injective over valid points, so it is the exact
	// cache identity of the query.
	ck := cacheKey{op: opLocate, code: code}
	var sum uint64
	if p.rc != nil {
		if v, ok := p.rc.get(origin, ck); ok {
			return v.(PointLocation), nil
		}
		sum = p.rc.churnNow()
	}
	i := p.st.of(code)
	p.st.rlock(i)
	defer p.st.runlock(i)
	if p.rc != nil {
		sum += uint64(p.st.writeCount(i))
	}
	res, err := p.ws[i].Query(code, origin)
	if err != nil {
		return PointLocation{}, fmt.Errorf("skipwebs: %w", err)
	}
	g := p.ws[i].GroundStructure()
	id := quadtree.NodeID(res.Range)
	loc := PointLocation{Hops: res.Hops, Latency: res.Latency}
	cell := g.CellOf(id)
	loc.CellPrefix, loc.CellBits = cell.Prefix, cell.PLen
	if g.IsLeaf(id) {
		loc.Leaf = true
		loc.LeafPoint = Point(g.PointAt(id))
	}
	if p.rc != nil {
		memo := loc
		memo.Hops, memo.Latency = 0, 0
		p.rc.put(origin, ck, memo, i, i, sum)
	}
	return loc, nil
}

// Contains reports whether the exact point is stored — O(log n)
// expected messages, the same bound as Locate. Exact membership needs
// only the stripe owning the point's Morton code.
func (p *Points) Contains(q Point, origin HostID) (bool, int, error) {
	found, c, err := p.containsCost(q, origin)
	return found, c.Hops, err
}

// containsCost is Contains returning the full hop/latency cost pair —
// the variant ContainsBatch surfaces per-query latency through.
func (p *Points) containsCost(q Point, origin HostID) (bool, core.Cost, error) {
	if p.nb != nil {
		// An invalid point falls through to Locate for its exact error.
		if code, err := p.ops.Code(quadtree.Point(q)); err == nil &&
			p.nb.definitelyAbsent(origin, p.st.of(code), hashKey64(code)) {
			return false, core.Cost{}, nil
		}
	}
	loc, err := p.Locate(q, origin)
	if err != nil {
		return false, core.Cost{}, err
	}
	found := loc.Leaf && len(loc.LeafPoint) == len(q)
	if found {
		for i := range q {
			if loc.LeafPoint[i] != q[i] {
				found = false
				break
			}
		}
	}
	if p.nb != nil && !found {
		p.nb.falsePositive(origin)
	}
	return found, core.Cost{Hops: loc.Hops, Latency: loc.Latency}, nil
}

// Nearest returns the exact nearest stored point to q under squared
// Euclidean distance. It first routes a distributed point-location query
// (the skip-web part), then refines with a best-first search over the
// ground tree, charging one extra hop per tree node expanded — the
// standard way point location supports neighbor queries (Section 3.1).
// Under write striping the refinement starts in the stripe owning the
// query's Morton code — a curve band whose cells are near q, seeding a
// tight distance bound — then prunes the other stripes' trees against
// that shared bound, so the extra expansions stay close to the
// single-tree search's.
func (p *Points) Nearest(q Point, origin HostID) (Point, int, error) {
	pt, c, err := p.nearestCost(q, origin)
	return pt, c.Hops, err
}

// nearestCost is Nearest returning the full hop/latency cost pair — the
// variant NearestBatch surfaces per-query latency through. Latency
// covers the routed point-location descent; the best-first refinement's
// expansions are charged as hops only (the search walks ground trees
// without tracking per-node host placement).
func (p *Points) nearestCost(q Point, origin HostID) (Point, core.Cost, error) {
	var ck cacheKey
	var sum uint64
	if p.rc != nil {
		// An invalid point never reaches the put: Locate errors first.
		if code, cerr := p.ops.Code(quadtree.Point(q)); cerr == nil {
			ck = cacheKey{op: opNearest, code: code}
			if v, ok := p.rc.get(origin, ck); ok {
				return v.(Point), core.Cost{}, nil
			}
			sum = p.rc.churnNow()
		}
	}
	loc, err := p.Locate(q, origin)
	if err != nil {
		return nil, core.Cost{}, err
	}
	own := p.st.of(p.stripeCode(q))
	var best quadtree.Point
	bestDist := ^uint64(0)
	extra := 0
	search := func(i int) {
		p.st.rlock(i)
		defer p.st.runlock(i)
		if p.rc != nil {
			sum += uint64(p.st.writeCount(i))
		}
		g := p.ws[i].GroundStructure()
		if g.Len() == 0 {
			return
		}
		pt, d, exp := nearestInTree(g, quadtree.Point(q), bestDist)
		extra += exp
		if pt != nil && d < bestDist {
			best, bestDist = pt, d
		}
	}
	search(own)
	for i := range p.ws {
		if i != own {
			search(i)
		}
	}
	if best == nil {
		return nil, core.Cost{Hops: loc.Hops + extra, Latency: loc.Latency},
			fmt.Errorf("skipwebs: empty point set")
	}
	if p.rc != nil {
		// The refinement read every stripe, so the epoch spans them all.
		p.rc.put(origin, ck, Point(best), 0, len(p.ws)-1, sum)
	}
	return Point(best), core.Cost{Hops: loc.Hops + extra, Latency: loc.Latency}, nil
}

// nearestItem is one frontier entry of the best-first search.
type nearestItem struct {
	id   quadtree.NodeID
	dist uint64
}

// nearestHeapPool recycles frontier buffers across Nearest calls (and
// across the concurrent NearestBatch workers), so the refinement search
// does not allocate a heap per query.
var nearestHeapPool = sync.Pool{New: func() any { return new([]nearestItem) }}

// nearestInTree is a best-first search with cell distance pruning. It
// returns the best point strictly closer than bound (nil when the tree
// holds none), its distance, and the number of nodes expanded. Pass
// ^uint64(0) to search unbounded; a striped Nearest threads the running
// best distance through as the bound so later trees prune early.
func nearestInTree(g *quadtree.Tree, q quadtree.Point, bound uint64) (quadtree.Point, uint64, int) {
	type item = nearestItem
	var bestPt quadtree.Point
	bestDist := bound
	expanded := 0
	heapBuf := nearestHeapPool.Get().(*[]nearestItem)
	heap := (*heapBuf)[:0]
	defer func() {
		*heapBuf = heap[:0]
		nearestHeapPool.Put(heapBuf)
	}()
	push := func(it item) {
		heap = append(heap, it)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if heap[parent].dist <= heap[i].dist {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && heap[l].dist < heap[small].dist {
				small = l
			}
			if r < len(heap) && heap[r].dist < heap[small].dist {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	push(item{id: g.Root(), dist: cellDist(g, g.Root(), q)})
	for len(heap) > 0 {
		it := pop()
		if it.dist >= bestDist {
			break
		}
		expanded++
		if g.IsLeaf(it.id) {
			d := pointDist(g.PointAt(it.id), q)
			if d < bestDist {
				bestDist = d
				bestPt = g.PointAt(it.id)
			}
			continue
		}
		for _, c := range g.Children(it.id) {
			if d := cellDist(g, c, q); d < bestDist {
				push(item{id: c, dist: d})
			}
		}
	}
	return bestPt, bestDist, expanded
}

// cellDist is the squared distance from q to node id's cell.
func cellDist(g *quadtree.Tree, id quadtree.NodeID, q quadtree.Point) uint64 {
	cell := g.CellOf(id)
	d := g.Dim()
	k := g.CoordBits()
	side := uint32(1) << uint(k-cell.PLen/d)
	// Decode the cell's corner from the Morton prefix. Dimension is at
	// most 6, so a fixed-size array keeps this allocation-free.
	var cornerBuf [6]uint32
	corner := cornerBuf[:d]
	for b := 0; b < cell.PLen; b++ {
		dim := b % d
		bit := (cell.Prefix >> uint(cell.PLen-1-b)) & 1
		corner[dim] = corner[dim]<<1 | uint32(bit)
	}
	for i := 0; i < d; i++ {
		corner[i] <<= uint(k - cell.PLen/d)
	}
	var sum uint64
	for i := 0; i < d; i++ {
		lo, hi := corner[i], corner[i]+side-1
		var diff uint64
		switch {
		case q[i] < lo:
			diff = uint64(lo - q[i])
		case q[i] > hi:
			diff = uint64(q[i] - hi)
		}
		sum += diff * diff
	}
	return sum
}

func pointDist(a, b quadtree.Point) uint64 {
	var sum uint64
	for i := range a {
		var diff uint64
		if a[i] > b[i] {
			diff = uint64(a[i] - b[i])
		} else {
			diff = uint64(b[i] - a[i])
		}
		sum += diff * diff
	}
	return sum
}

// Insert adds a point, returning the update's message cost — O(log n)
// expected messages (Section 4): a routed location plus an
// O(1)-message cell split per level of the point's bit path. The update
// holds only its stripe's writer lock, so inserts into different Morton
// bands run concurrently.
func (p *Points) Insert(q Point, origin HostID) (int, error) {
	i := p.st.of(p.stripeCode(q))
	p.st.wlock(i)
	defer p.st.wunlock(i)
	if p.nb != nil {
		if code, cerr := p.ops.Code(quadtree.Point(q)); cerr == nil {
			p.nb.add(i, hashKey64(code))
		}
	}
	h, err := p.ws[i].Insert(quadtree.Point(q), origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// Delete removes a point, returning the update's message cost — O(log
// n) expected messages (Section 4), pruning emptied cells level by
// level. The update holds only its stripe's writer lock.
func (p *Points) Delete(q Point, origin HostID) (int, error) {
	i := p.st.of(p.stripeCode(q))
	p.st.wlock(i)
	defer p.st.wunlock(i)
	h, err := p.ws[i].Delete(quadtree.Point(q), origin)
	if err != nil {
		return h, fmt.Errorf("skipwebs: %w", err)
	}
	return h, nil
}

// NearestResult is one answer of a nearest-neighbor batch.
type NearestResult struct {
	// Point is the nearest stored point under squared Euclidean distance.
	Point Point
	// Hops is the number of messages the query cost.
	Hops int
	// Latency is the modeled critical-path latency of the routed
	// point-location descent, in model units (refinement expansions are
	// hop-only; see Nearest). Zero without a model and zero on cache hits.
	Latency int64
}

// LocateBatch answers one point-location query per element of qs
// concurrently (see the batch engine notes in batch.go). Results are in
// input order.
func (p *Points) LocateBatch(qs []Point, origins []HostID) ([]PointLocation, error) {
	return runReadBatch(p.c, qs, origins, p.Locate)
}

// ContainsBatch answers one exact-membership query per point concurrently.
func (p *Points) ContainsBatch(qs []Point, origins []HostID) ([]ContainsResult, error) {
	return runReadBatch(p.c, qs, origins, func(q Point, origin HostID) (ContainsResult, error) {
		ok, c, err := p.containsCost(q, origin)
		return ContainsResult{Found: ok, Hops: c.Hops, Latency: c.Latency}, err
	})
}

// NearestBatch answers one exact nearest-neighbor query per point
// concurrently.
func (p *Points) NearestBatch(qs []Point, origins []HostID) ([]NearestResult, error) {
	return runReadBatch(p.c, qs, origins, func(q Point, origin HostID) (NearestResult, error) {
		pt, c, err := p.nearestCost(q, origin)
		return NearestResult{Point: pt, Hops: c.Hops, Latency: c.Latency}, err
	})
}

// InsertBatch adds the points — one parallel writer per Morton-code
// stripe, strict input order within each stripe — returning each
// update's message cost in input order.
func (p *Points) InsertBatch(qs []Point, origins []HostID) ([]int, error) {
	return runWriteBatch(p.c, qs, origins, p.st, p.stripeCode, p.Insert)
}

// DeleteBatch removes the points — one parallel writer per Morton-code
// stripe, strict input order within each stripe — returning each
// update's message cost in input order.
func (p *Points) DeleteBatch(qs []Point, origins []HostID) ([]int, error) {
	return runWriteBatch(p.c, qs, origins, p.st, p.stripeCode, p.Delete)
}

// rehome and rebalance are the churn hooks Cluster.Leave and
// Cluster.Join drive: quadtree cells migrate between hosts with their
// hyperlinks, one message per storage unit moved.
func (p *Points) rehome(from HostID, op *sim.Op) {
	p.bumpChurn()
	for _, w := range p.ws {
		w.Rehome(from, op)
	}
}
func (p *Points) rebalance(onto HostID, op *sim.Op) {
	p.bumpChurn()
	for _, w := range p.ws {
		w.Rebalance(onto, op)
	}
}

// repair is the crash-recovery hook Cluster.Crash drives: re-replicate
// every under-replicated cell from its surviving live replicas.
func (p *Points) repair(op *sim.Op) error {
	p.bumpChurn()
	return repairStripes(op, p.ws)
}

// restart is the durable-recovery hook Cluster.Restart drives: merkle-
// reconcile the restarted host's ranges against one live peer each.
func (p *Points) restart(h HostID, op *sim.Op) int {
	p.bumpChurn()
	n := 0
	for _, w := range p.ws {
		n += w.RestartHost(h, op)
	}
	return n
}

func (p *Points) kind() string { return "points" }

// CheckConsistent verifies the point web's invariants: every cell on a
// live host, hyperlinks matching recomputation, and per-level counts
// that add up. Cost: O(n log n) local work, no messages.
func (p *Points) CheckConsistent() error {
	for _, w := range p.ws {
		if err := w.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}
