package skipwebs

import (
	"sort"
	"sync"
	"testing"

	"github.com/skipwebs/skipwebs/internal/experiments"
	"github.com/skipwebs/skipwebs/internal/xrand"
)

// Linearizability property suite.
//
// Each test races several writer goroutines (concurrent Insert/Delete
// batches on a striped structure) against reader goroutines (query
// batches), under the race detector, and checks the executions against a
// serialized control:
//
//   - Online invariants: while writers run, readers must always see the
//     stable key set (keys present at build and never touched), and
//     every answer must satisfy the operation's contract (floor <= query,
//     exact membership of stable keys).
//   - Serialized control: each update is atomic under its stripe's
//     writer lock and stripes share no state, so the concurrent history
//     must be equivalent to SOME serial order of the same operations that
//     preserves per-stripe order. Every such order yields the same final
//     key set (inserts and deletes of distinct keys commute; each test
//     key is inserted once and deleted at most once, after its insert
//     batch returned). The tests compute that set, replay the workload
//     serially on an identically-configured structure, and require both
//     the concurrent structure and the serial control to land on it
//     exactly — plus a full CheckConsistent on the raced structure.
//
// The suite covers all six structures; Planar is static, so its test
// races query batches against the construction of additional structures
// on the same cluster instead of against updates.

// linWorkload is the shared fixture: stable build keys plus one disjoint
// insert pool per writer, of which each writer later deletes the first
// half.
type linWorkload struct {
	stable []uint64
	pools  [][]uint64
}

func makeLinWorkload(seed uint64, stable, writers, perWriter int) linWorkload {
	keys := experiments.Keys(xrand.New(seed), stable+writers*perWriter, 1<<40)
	wl := linWorkload{stable: keys[:stable]}
	rest := keys[stable:]
	for w := 0; w < writers; w++ {
		wl.pools = append(wl.pools, rest[w*perWriter:(w+1)*perWriter])
	}
	return wl
}

// finalSet is the key set every linearization of the workload ends in.
func (wl linWorkload) finalSet() []uint64 {
	var out []uint64
	out = append(out, wl.stable...)
	for _, pool := range wl.pools {
		out = append(out, pool[len(pool)/2:]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// raceWritersAndReaders runs one writer goroutine per pool (insert the
// pool in chunks, then delete its first half) against `readers` reader
// goroutines running `rounds` of the read closure, until the writers
// finish. Reader errors fail the test.
func raceWritersAndReaders(t *testing.T, wl linWorkload,
	insert func(chunk []uint64) error, del func(chunk []uint64) error,
	read func(round int) error) {
	t.Helper()
	const chunk = 16
	var wg sync.WaitGroup
	errc := make(chan error, len(wl.pools)+4)
	for _, pool := range wl.pools {
		wg.Add(1)
		go func(pool []uint64) {
			defer wg.Done()
			for i := 0; i < len(pool); i += chunk {
				end := i + chunk
				if end > len(pool) {
					end = len(pool)
				}
				if err := insert(pool[i:end]); err != nil {
					errc <- err
					return
				}
			}
			if err := del(pool[:len(pool)/2]); err != nil {
				errc <- err
			}
		}(pool)
	}
	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for round := 0; ; round++ {
				select {
				case <-writersDone:
					return
				default:
				}
				if err := read(round); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	rg.Wait()
	<-writersDone
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// linOrigins spreads a chunk's operations round-robin (nil origins).
var linOrigins []HostID

func TestLinearizabilityOneDim(t *testing.T) {
	const hosts, S = 16, 4
	wl := makeLinWorkload(101, 256, 4, 64)
	c := NewCluster(hosts)
	defer c.Close()
	w, err := NewOneDim(c, wl.stable, Options{Seed: 1, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	stableQ := wl.stable[:32]
	raceWritersAndReaders(t, wl,
		func(chunk []uint64) error { _, err := w.InsertBatch(chunk, linOrigins); return err },
		func(chunk []uint64) error { _, err := w.DeleteBatch(chunk, linOrigins); return err },
		func(round int) error {
			rs, err := w.FloorBatch(stableQ, linOrigins)
			if err != nil {
				return err
			}
			for i, r := range rs {
				if !r.Found || r.Key != stableQ[i] {
					t.Errorf("round %d: stable key %d invisible: %+v", round, stableQ[i], r)
				}
			}
			return nil
		})
	want := wl.finalSet()
	got := w.Keys()
	assertKeySetsEqual(t, "concurrent", got, want)
	if err := w.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	// Serialized control: same config, same operations, one at a time.
	cc := NewCluster(hosts)
	wc, err := NewOneDim(cc, wl.stable, Options{Seed: 1, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	for _, pool := range wl.pools {
		for _, k := range pool {
			if _, err := wc.Insert(k, 0); err != nil {
				t.Fatal(err)
			}
		}
		for _, k := range pool[:len(pool)/2] {
			if _, err := wc.Delete(k, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	assertKeySetsEqual(t, "serial control", wc.Keys(), want)
}

func assertKeySetsEqual(t *testing.T, name string, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: key[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
}

func TestLinearizabilityBlocked(t *testing.T) {
	const hosts, S = 16, 4
	wl := makeLinWorkload(102, 256, 4, 64)
	c := NewCluster(hosts)
	defer c.Close()
	w, err := NewBlocked(c, wl.stable, Options{Seed: 2, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	stableQ := wl.stable[:32]
	raceWritersAndReaders(t, wl,
		func(chunk []uint64) error { _, err := w.InsertBatch(chunk, linOrigins); return err },
		func(chunk []uint64) error { _, err := w.DeleteBatch(chunk, linOrigins); return err },
		func(round int) error {
			rs, err := w.FloorBatch(stableQ, linOrigins)
			if err != nil {
				return err
			}
			for i, r := range rs {
				if !r.Found || r.Key != stableQ[i] {
					t.Errorf("round %d: stable key %d invisible: %+v", round, stableQ[i], r)
				}
			}
			// Range over the full space must always include every stable key.
			if round%4 == 0 {
				rrs, err := w.RangeBatch([]KeyRange{{Lo: 0, Hi: ^uint64(0)}}, linOrigins)
				if err != nil {
					return err
				}
				seen := make(map[uint64]bool, len(rrs[0].Keys))
				for _, k := range rrs[0].Keys {
					seen[k] = true
				}
				for _, k := range wl.stable {
					if !seen[k] {
						t.Errorf("round %d: range lost stable key %d", round, k)
					}
				}
			}
			return nil
		})
	want := wl.finalSet()
	got, _, err := w.Range(0, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertKeySetsEqual(t, "concurrent", got, want)
	if err := w.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	cc := NewCluster(hosts)
	wc, err := NewBlocked(cc, wl.stable, Options{Seed: 2, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	for _, pool := range wl.pools {
		if _, err := wc.InsertBatch(pool, linOrigins); err != nil {
			t.Fatal(err)
		}
		if _, err := wc.DeleteBatch(pool[:len(pool)/2], linOrigins); err != nil {
			t.Fatal(err)
		}
	}
	ctl, _, err := wc.Range(0, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertKeySetsEqual(t, "serial control", ctl, want)
}

func TestLinearizabilityBucketed(t *testing.T) {
	const hosts, S = 16, 4
	wl := makeLinWorkload(103, 256, 4, 48)
	c := NewCluster(hosts)
	defer c.Close()
	w, err := NewBucketed(c, wl.stable, Options{Seed: 3, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	stableQ := wl.stable[:32]
	raceWritersAndReaders(t, wl,
		func(chunk []uint64) error { _, err := w.InsertBatch(chunk, linOrigins); return err },
		func(chunk []uint64) error { _, err := w.DeleteBatch(chunk, linOrigins); return err },
		func(round int) error {
			rs, err := w.ContainsBatch(stableQ, linOrigins)
			if err != nil {
				return err
			}
			for i, r := range rs {
				if !r.Found {
					t.Errorf("round %d: stable key %d invisible", round, stableQ[i])
				}
			}
			return nil
		})
	want := wl.finalSet()
	got, _, err := w.Range(0, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertKeySetsEqual(t, "concurrent", got, want)
	if err := w.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	cc := NewCluster(hosts)
	wc, err := NewBucketed(cc, wl.stable, Options{Seed: 3, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	for _, pool := range wl.pools {
		if _, err := wc.InsertBatch(pool, linOrigins); err != nil {
			t.Fatal(err)
		}
		if _, err := wc.DeleteBatch(pool[:len(pool)/2], linOrigins); err != nil {
			t.Fatal(err)
		}
	}
	ctl, _, err := wc.Range(0, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertKeySetsEqual(t, "serial control", ctl, want)
}

func TestLinearizabilityPoints(t *testing.T) {
	const hosts, S, stable, writers, perWriter = 16, 4, 256, 4, 48
	raw := experiments.UniformPoints(xrand.New(104), 2, stable+writers*perWriter, 1<<30)
	pts := make([]Point, len(raw))
	for i, p := range raw {
		pts[i] = Point(p)
	}
	stablePts := pts[:stable]
	var pools [][]Point
	rest := pts[stable:]
	for w := 0; w < writers; w++ {
		pools = append(pools, rest[w*perWriter:(w+1)*perWriter])
	}
	c := NewCluster(hosts)
	defer c.Close()
	w, err := NewPoints(c, 2, stablePts, Options{Seed: 4, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, pool := range pools {
		wg.Add(1)
		go func(pool []Point) {
			defer wg.Done()
			for i := 0; i < len(pool); i += 16 {
				end := i + 16
				if end > len(pool) {
					end = len(pool)
				}
				if _, err := w.InsertBatch(pool[i:end], linOrigins); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := w.DeleteBatch(pool[:len(pool)/2], linOrigins); err != nil {
				t.Error(err)
			}
		}(pool)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	stableQ := stablePts[:32]
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for round := 0; ; round++ {
				select {
				case <-done:
					return
				default:
				}
				rs, err := w.ContainsBatch(stableQ, linOrigins)
				if err != nil {
					t.Error(err)
					return
				}
				for i, r := range rs {
					if !r.Found {
						t.Errorf("round %d: stable point %v invisible", round, stableQ[i])
					}
				}
				if _, err := w.NearestBatch(stableQ[:4], linOrigins); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	rg.Wait()
	<-done
	if t.Failed() {
		t.FailNow()
	}
	// Final state: stable ∪ second halves of every pool.
	var want []Point
	want = append(want, stablePts...)
	for _, pool := range pools {
		want = append(want, pool[len(pool)/2:]...)
	}
	if got := w.Len(); got != len(want) {
		t.Fatalf("final Len %d, want %d", got, len(want))
	}
	for _, q := range want {
		ok, _, err := w.Contains(q, 0)
		if err != nil || !ok {
			t.Fatalf("final point %v missing (ok=%v err=%v)", q, ok, err)
		}
	}
	if err := w.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	// Serialized control.
	cc := NewCluster(hosts)
	wc, err := NewPoints(cc, 2, stablePts, Options{Seed: 4, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	for _, pool := range pools {
		if _, err := wc.InsertBatch(pool, linOrigins); err != nil {
			t.Fatal(err)
		}
		if _, err := wc.DeleteBatch(pool[:len(pool)/2], linOrigins); err != nil {
			t.Fatal(err)
		}
	}
	if got := wc.Len(); got != len(want) {
		t.Fatalf("control Len %d, want %d", got, len(want))
	}
}

func TestLinearizabilityStrings(t *testing.T) {
	const hosts, S, stable, writers, perWriter = 16, 4, 256, 4, 48
	keys := experiments.UniformStrings(xrand.New(105), stable+writers*perWriter, "acgt", 6, 24)
	stableKeys := keys[:stable]
	var pools [][]string
	rest := keys[stable:]
	for w := 0; w < writers; w++ {
		pools = append(pools, rest[w*perWriter:(w+1)*perWriter])
	}
	c := NewCluster(hosts)
	defer c.Close()
	w, err := NewStrings(c, stableKeys, Options{Seed: 5, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, pool := range pools {
		wg.Add(1)
		go func(pool []string) {
			defer wg.Done()
			for i := 0; i < len(pool); i += 16 {
				end := i + 16
				if end > len(pool) {
					end = len(pool)
				}
				if _, err := w.InsertBatch(pool[i:end], linOrigins); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := w.DeleteBatch(pool[:len(pool)/2], linOrigins); err != nil {
				t.Error(err)
			}
		}(pool)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	stableQ := stableKeys[:32]
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for round := 0; ; round++ {
				select {
				case <-done:
					return
				default:
				}
				rs, err := w.ContainsBatch(stableQ, linOrigins)
				if err != nil {
					t.Error(err)
					return
				}
				for i, r := range rs {
					if !r.Found {
						t.Errorf("round %d: stable key %q invisible", round, stableQ[i])
					}
				}
			}
		}()
	}
	rg.Wait()
	<-done
	if t.Failed() {
		t.FailNow()
	}
	want := map[string]bool{}
	for _, k := range stableKeys {
		want[k] = true
	}
	for _, pool := range pools {
		for _, k := range pool[len(pool)/2:] {
			want[k] = true
		}
	}
	all, _, err := w.PrefixSearch("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(want) {
		t.Fatalf("final key count %d, want %d", len(all), len(want))
	}
	for _, k := range all {
		if !want[k] {
			t.Fatalf("unexpected final key %q", k)
		}
	}
	if err := w.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	// Serialized control.
	cc := NewCluster(hosts)
	wc, err := NewStrings(cc, stableKeys, Options{Seed: 5, WriteStripes: S})
	if err != nil {
		t.Fatal(err)
	}
	for _, pool := range pools {
		if _, err := wc.InsertBatch(pool, linOrigins); err != nil {
			t.Fatal(err)
		}
		if _, err := wc.DeleteBatch(pool[:len(pool)/2], linOrigins); err != nil {
			t.Fatal(err)
		}
	}
	ctl, _, err := wc.PrefixSearch("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertStringSetsEqual(t, ctl, all)
}

func assertStringSetsEqual(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("control has %d keys, raced structure %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key[%d]: control %q, raced %q", i, got[i], want[i])
		}
	}
}

// TestLinearizabilityPlanarRebuild races point-location batches on a
// static Planar structure against the construction of additional Planar
// structures on the same cluster. Builds mutate only the shared
// network's thread-safe counters before taking the churn lock to
// attach, so in-flight query batches must keep answering exactly.
func TestLinearizabilityPlanarRebuild(t *testing.T) {
	const hosts = 8
	const span = 60000 // strictly inside ±MaxPlanarCoord
	bounds := PlanarBounds{MinX: 0, MinY: 0, MaxX: span, MaxY: span}
	rng := xrand.New(106)
	segs := planarFence(24)
	c := NewCluster(hosts)
	defer c.Close()
	w, err := NewPlanar(c, segs, bounds, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]PlanarPoint, 64)
	for i := range qs {
		qs[i] = PlanarPoint{X: int64(rng.Uint64n(span-2) + 1), Y: int64(rng.Uint64n(span-2) + 1)}
	}
	want, err := w.LocateBatch(qs, linOrigins)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			if _, err := NewPlanar(c, segs, bounds, Options{Seed: uint64(7 + i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for round := 0; ; round++ {
		got, err := w.LocateBatch(qs, linOrigins)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].Top != want[i].Top || got[i].Bottom != want[i].Bottom ||
				got[i].LeftX != want[i].LeftX || got[i].RightX != want[i].RightX {
				t.Fatalf("round %d: query %d answer changed under rebuild: %+v vs %+v", round, i, got[i], want[i])
			}
		}
		select {
		case <-done:
			if t.Failed() {
				t.FailNow()
			}
			return
		default:
		}
	}
}

// planarFence builds n disjoint horizontal segments stacked vertically —
// trivially non-crossing, in general position.
func planarFence(n int) []PlanarSegment {
	segs := make([]PlanarSegment, n)
	for i := range segs {
		y := int64(1000 + i*2000)
		segs[i] = PlanarSegment{
			A: PlanarPoint{X: int64(10 + i), Y: y},
			B: PlanarPoint{X: int64(60000 - 10 - i), Y: y},
		}
	}
	return segs
}
