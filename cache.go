package skipwebs

import (
	"sync"
	"sync/atomic"

	"github.com/skipwebs/skipwebs/internal/bloom"
)

// Read-path caching.
//
// Options.CacheFingers and Options.NegativeBloom add two opt-in
// origin-local accelerators for skewed query traffic. Both live entirely
// at the query's origin host and never touch the network, so the
// accounting contract is simple and absolute: a cache or bloom answer
// charges zero messages (the origin re-serves a frontier a previous
// descent already paid for), and a miss runs the completely unmodified
// descent — populating the cache is local bookkeeping. Per-op messages
// are therefore <= the cache-free control on every single operation, and
// with both options off the query path is bit-identical to previous
// builds (golden parity pins this).
//
// Correctness is an epoch check, not an invalidation broadcast. Every
// cache entry records which stripes its answer was computed from and the
// sum of those stripes' write counters (stripeSet.writes — bumped by
// every writer-lock acquisition BEFORE the mutation, so a counter
// observed under a reader lock is exactly the epoch of the data read)
// plus a per-structure churn counter bumped by the rehome / rebalance /
// repair / restart hooks. On lookup the same sum is recomputed from the
// live counters: all counters are monotonic, so sum-equality implies
// each component is unchanged, which implies no writer completed (or is
// mid-flight — the counter bumps before the mutation) and no churn ran
// since the entry was captured. Any mismatch evicts the entry and falls
// through to a full descent. Entries never outlive their epoch; there is
// nothing to flush on Join/Leave/Crash/Restart beyond the churn bump.
//
// The negative bloom is a per-stripe filter over the hashes of stored
// keys with superset semantics: Insert adds (under the stripe writer
// lock, including the batch fast paths), Delete removes nothing, and
// churn moves placement but not membership, so the filter is always a
// superset of the stored set. "Definitely absent" answers are thus
// always correct and cost zero messages; a stale "maybe" only forces the
// full (correct) descent. One asymmetry is deliberate: a bloom negative
// during a crash answers (false, 0 msgs) where the control would fail
// fast with ErrHostDown — the filter knows the key was never stored, so
// it answers without needing the dead host.

// CacheStats reports the read-path cache counters of one host or an
// aggregate of hosts (see Cluster.CacheStatsByHost and Cluster.Stats).
// Counters are attributed to the origin host of the query that moved
// them.
type CacheStats struct {
	// Hits counts queries answered from the finger cache (zero messages).
	Hits int64
	// Misses counts cache lookups that ran the full descent (absent or
	// stale entries; stale ones also count an Invalidation).
	Misses int64
	// Invalidations counts entries evicted because their epoch check
	// failed — a write, delete, or churn event touched their stripes.
	Invalidations int64
	// BloomTrueNegatives counts membership queries answered "definitely
	// absent" by the negative bloom (zero messages).
	BloomTrueNegatives int64
	// BloomFalsePositives counts membership queries the bloom let through
	// ("maybe present") whose full descent then answered absent.
	BloomFalsePositives int64
}

// add accumulates o into s.
func (s *CacheStats) add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Invalidations += o.Invalidations
	s.BloomTrueNegatives += o.BloomTrueNegatives
	s.BloomFalsePositives += o.BloomFalsePositives
}

// Cache entry kinds. Each query family gets its own tag so e.g. a Floor
// and a Contains for the same key never collide.
const (
	opFloor uint8 = iota + 1
	opContains
	opLocate
	opNearest
	opSearch
	opPrefix
	opPlanarLocate
)

// cacheShardCap bounds each origin host's LRU shard. 256 entries is
// plenty for the hot set of a Zipf workload while keeping the per-host
// footprint trivial next to the host's data shard.
const cacheShardCap = 256

// cacheKey identifies one cached answer: the op tag plus the query's
// exact identity (uint64 key or Morton code in code, planar Y in code2,
// string queries in str). Keys are exact — hits require identity, never
// similarity — so a hit can only ever return the answer the control
// would compute.
type cacheKey struct {
	op    uint8
	code  uint64
	code2 uint64
	str   string
}

// cacheEntry is one LRU slot: the memoized value, the stripe range
// [lo, hi] the answer was computed from, and the epoch sum (churn
// counter + those stripes' write counters) at capture time.
type cacheEntry struct {
	key        cacheKey
	val        any
	lo, hi     int
	sum        uint64
	prev, next int
}

// cacheShard is one origin host's cache: a map-indexed intrusive LRU
// list over a fixed slot array. Same-origin operations in a batch
// serialize in input order on that host's worker, so a shard evolves
// deterministically under concurrent batches; the mutex covers
// synchronous calls from foreign goroutines.
type cacheShard struct {
	mu         sync.Mutex
	idx        map[cacheKey]int
	ents       []cacheEntry
	head, tail int
	free       []int
	hits       int64
	misses     int64
	inval      int64
}

func newCacheShard() *cacheShard {
	return &cacheShard{idx: make(map[cacheKey]int), head: -1, tail: -1}
}

// unlink removes slot i from the LRU list (caller holds mu).
func (s *cacheShard) unlink(i int) {
	e := &s.ents[i]
	if e.prev >= 0 {
		s.ents[e.prev].next = e.next
	} else {
		s.head = e.next
	}
	if e.next >= 0 {
		s.ents[e.next].prev = e.prev
	} else {
		s.tail = e.prev
	}
}

// pushFront makes slot i the most recently used (caller holds mu).
func (s *cacheShard) pushFront(i int) {
	e := &s.ents[i]
	e.prev, e.next = -1, s.head
	if s.head >= 0 {
		s.ents[s.head].prev = i
	} else {
		s.tail = i
	}
	s.head = i
}

// readCache is one structure's finger/descent cache: a per-origin-host
// shard map plus the structure's churn counter. st is the structure's
// stripe set (nil for Planar, whose data is static and whose epochs are
// churn-only).
type readCache struct {
	st     *stripeSet
	churn  atomic.Uint64
	mu     sync.RWMutex
	shards map[HostID]*cacheShard
}

// shard returns origin's shard, creating it when create is set.
func (rc *readCache) shard(origin HostID, create bool) *cacheShard {
	rc.mu.RLock()
	sh := rc.shards[origin]
	rc.mu.RUnlock()
	if sh != nil || !create {
		return sh
	}
	rc.mu.Lock()
	sh = rc.shards[origin]
	if sh == nil {
		sh = newCacheShard()
		rc.shards[origin] = sh
	}
	rc.mu.Unlock()
	return sh
}

// churnNow reads the structure's churn counter. Query paths capture it
// BEFORE their descent, so a churn event landing mid-descent makes the
// stored sum smaller than the live one — a conservative miss later.
func (rc *readCache) churnNow() uint64 { return rc.churn.Load() }

// current recomputes the epoch sum of stripe range [lo, hi] from the
// live counters: churn plus each stripe's write counter. All atomic
// loads, no locks.
func (rc *readCache) current(lo, hi int) uint64 {
	cur := rc.churn.Load()
	if rc.st != nil {
		for i := lo; i <= hi; i++ {
			cur += uint64(rc.st.writeCount(i))
		}
	}
	return cur
}

// get returns the cached value for key at origin if its epoch check
// passes. A stale entry is evicted (counting an invalidation) and
// reported as a miss.
func (rc *readCache) get(origin HostID, key cacheKey) (any, bool) {
	sh := rc.shard(origin, false)
	if sh == nil {
		return nil, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	i, ok := sh.idx[key]
	if !ok {
		sh.misses++
		return nil, false
	}
	e := &sh.ents[i]
	if rc.current(e.lo, e.hi) != e.sum {
		sh.unlink(i)
		delete(sh.idx, key)
		sh.free = append(sh.free, i)
		e.val = nil
		sh.inval++
		sh.misses++
		return nil, false
	}
	sh.unlink(i)
	sh.pushFront(i)
	sh.hits++
	return e.val, true
}

// put memoizes val for key at origin. lo/hi name the stripes the answer
// was computed from and sum their epoch at capture: the caller's
// pre-descent churn value plus each visited stripe's write counter read
// under that stripe's reader lock — i.e. never newer than the data, so
// a racing writer can only make the entry conservatively stale.
func (rc *readCache) put(origin HostID, key cacheKey, val any, lo, hi int, sum uint64) {
	sh := rc.shard(origin, true)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if i, ok := sh.idx[key]; ok {
		e := &sh.ents[i]
		e.val, e.lo, e.hi, e.sum = val, lo, hi, sum
		sh.unlink(i)
		sh.pushFront(i)
		return
	}
	var i int
	switch {
	case len(sh.free) > 0:
		i = sh.free[len(sh.free)-1]
		sh.free = sh.free[:len(sh.free)-1]
	case len(sh.ents) < cacheShardCap:
		i = len(sh.ents)
		sh.ents = append(sh.ents, cacheEntry{})
	default:
		i = sh.tail
		delete(sh.idx, sh.ents[i].key)
		sh.unlink(i)
	}
	sh.ents[i] = cacheEntry{key: key, val: val, lo: lo, hi: hi, sum: sum, prev: -1, next: -1}
	sh.idx[key] = i
	sh.pushFront(i)
}

// bloomCounts are one origin host's negative-bloom counters.
type bloomCounts struct {
	tn atomic.Int64
	fp atomic.Int64
}

// negBloom is one structure's negative-lookup filter set: one bloom
// filter per stripe over the hashes of that stripe's stored keys, with
// superset semantics (see the package notes at the top of this file).
type negBloom struct {
	filters []*bloom.Filter
	mu      sync.RWMutex
	byHost  map[HostID]*bloomCounts
}

// counts returns origin's counter block, creating it on first use.
func (nb *negBloom) counts(origin HostID) *bloomCounts {
	nb.mu.RLock()
	bc := nb.byHost[origin]
	nb.mu.RUnlock()
	if bc != nil {
		return bc
	}
	nb.mu.Lock()
	bc = nb.byHost[origin]
	if bc == nil {
		bc = &bloomCounts{}
		nb.byHost[origin] = bc
	}
	nb.mu.Unlock()
	return bc
}

// add marks key hash h stored in stripe. Writers call it under the
// stripe's writer lock before the engine insert.
func (nb *negBloom) add(stripe int, h uint64) { nb.filters[stripe].Add(h) }

// definitelyAbsent consults stripe's filter for key hash h at the
// query's origin: true means the key was never stored (counted as a
// true negative); false means "maybe present" — run the full descent.
func (nb *negBloom) definitelyAbsent(origin HostID, stripe int, h uint64) bool {
	if nb.filters[stripe].Maybe(h) {
		return false
	}
	nb.counts(origin).tn.Add(1)
	return true
}

// falsePositive records that the bloom let an absent key through.
func (nb *negBloom) falsePositive(origin HostID) { nb.counts(origin).fp.Add(1) }

// readPath is the cache layer every structure embeds: a finger cache
// (rc) and a negative bloom (nb), either or both nil when the
// corresponding Option is off. The promoted methods give the Cluster a
// uniform way to aggregate stats and bump churn epochs.
type readPath struct {
	rc *readCache
	nb *negBloom
}

// newReadPath builds the cache layer for a structure: a finger cache
// when opts.CacheFingers, and per-stripe negative blooms sized to
// stripeKeys when opts.NegativeBloom (structures without a membership
// query — Planar — pass nil stripeKeys and get no bloom). Constructors
// seed the blooms with their build keys.
func newReadPath(opts Options, st *stripeSet, stripeKeys []int) readPath {
	var rp readPath
	if opts.CacheFingers {
		rp.rc = &readCache{st: st, shards: make(map[HostID]*cacheShard)}
	}
	if opts.NegativeBloom && stripeKeys != nil {
		nb := &negBloom{
			filters: make([]*bloom.Filter, len(stripeKeys)),
			byHost:  make(map[HostID]*bloomCounts),
		}
		for i, n := range stripeKeys {
			nb.filters[i] = bloom.New(n)
		}
		rp.nb = nb
	}
	return rp
}

// bumpChurn advances the structure's churn epoch, lazily invalidating
// every cache entry. The churn hooks (rehome, rebalance, repair,
// restart) call it under the cluster write lock.
func (rp readPath) bumpChurn() {
	if rp.rc != nil {
		rp.rc.churn.Add(1)
	}
}

// cacheStats aggregates the structure's counters across all origin
// hosts. Cluster.Stats type-asserts for this.
func (rp readPath) cacheStats() CacheStats {
	var cs CacheStats
	rp.cacheStatsByHost(nil, &cs)
	return cs
}

// cacheStatsByHost merges the structure's per-origin counters into
// byHost (when non-nil) and the aggregate into total (when non-nil).
func (rp readPath) cacheStatsByHost(byHost map[HostID]CacheStats, total *CacheStats) {
	if rp.rc != nil {
		rp.rc.mu.RLock()
		for h, sh := range rp.rc.shards {
			sh.mu.Lock()
			cs := CacheStats{Hits: sh.hits, Misses: sh.misses, Invalidations: sh.inval}
			sh.mu.Unlock()
			if byHost != nil {
				m := byHost[h]
				m.add(cs)
				byHost[h] = m
			}
			if total != nil {
				total.add(cs)
			}
		}
		rp.rc.mu.RUnlock()
	}
	if rp.nb != nil {
		rp.nb.mu.RLock()
		for h, bc := range rp.nb.byHost {
			cs := CacheStats{BloomTrueNegatives: bc.tn.Load(), BloomFalsePositives: bc.fp.Load()}
			if byHost != nil {
				m := byHost[h]
				m.add(cs)
				byHost[h] = m
			}
			if total != nil {
				total.add(cs)
			}
		}
		rp.nb.mu.RUnlock()
	}
}

// partSizes returns the per-stripe build-key counts the bloom filters
// are sized from.
func partSizes[T any](parts [][]T) []int {
	ns := make([]int, len(parts))
	for i, p := range parts {
		ns[i] = len(p)
	}
	return ns
}

// hashKey64 mixes a uint64 key (or Morton code) into the hash the bloom
// filters index by — a SplitMix64 finalizer round, so dense key ranges
// spread over the whole filter.
func hashKey64(k uint64) uint64 {
	z := k + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashKeyString hashes a string key for the bloom filters (FNV-1a 64).
func hashKeyString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
