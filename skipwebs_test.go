package skipwebs

import (
	"strings"
	"testing"

	"github.com/skipwebs/skipwebs/internal/xrand"
)

func distinctKeys(rng *xrand.Rand, n int) []uint64 {
	seen := map[uint64]bool{}
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := rng.Uint64n(1 << 40)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func TestOneDimEndToEnd(t *testing.T) {
	c := NewCluster(256)
	rng := xrand.New(1)
	keys := distinctKeys(rng, 256)
	d, err := NewOneDim(c, keys, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 256 {
		t.Fatalf("len %d", d.Len())
	}
	for _, k := range keys[:50] {
		r, err := d.Floor(k, HostID(int(k)%256))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || r.Key != k {
			t.Fatalf("Floor(%d) = %+v", k, r)
		}
		if r.Hops <= 0 {
			t.Fatalf("Floor(%d) cost %d hops", k, r.Hops)
		}
	}
	ok, _, err := d.Contains(keys[0], 3)
	if err != nil || !ok {
		t.Fatalf("Contains(stored) = %v, %v", ok, err)
	}
	if _, err := d.Insert(keys[0], 0); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if _, err := d.Insert(1<<41, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Delete(keys[1], 0); err != nil {
		t.Fatal(err)
	}
	got := d.Keys()
	if len(got) != 256 {
		t.Fatalf("keys after churn: %d", len(got))
	}
	s := c.Stats()
	if s.TotalMessages == 0 || s.MaxStorage == 0 {
		t.Fatalf("accounting empty: %+v", s)
	}
}

func TestBlockedEndToEnd(t *testing.T) {
	c := NewCluster(512)
	rng := xrand.New(2)
	keys := distinctKeys(rng, 512)
	b, err := NewBlocked(c, keys, Options{Seed: 2, M: 16})
	if err != nil {
		t.Fatal(err)
	}
	if b.M() != 16 {
		t.Fatalf("M = %d", b.M())
	}
	for i := 0; i < 200; i++ {
		q := rng.Uint64n(1 << 41)
		r, err := b.Floor(q, HostID(i%512))
		if err != nil {
			t.Fatal(err)
		}
		want, wok := bruteFloor(keys, q)
		if r.Found != wok || (r.Found && r.Key != want) {
			t.Fatalf("Floor(%d) = %+v want %d,%v", q, r, want, wok)
		}
	}
	if _, err := b.Insert(1<<41, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Delete(keys[0], 0); err != nil {
		t.Fatal(err)
	}
}

func bruteFloor(keys []uint64, q uint64) (uint64, bool) {
	best, ok := uint64(0), false
	for _, k := range keys {
		if k <= q && (!ok || k > best) {
			best, ok = k, true
		}
	}
	return best, ok
}

func TestBucketedEndToEnd(t *testing.T) {
	c := NewCluster(64)
	rng := xrand.New(3)
	keys := distinctKeys(rng, 1024)
	b, err := NewBucketed(c, keys, Options{Seed: 3, M: 16})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1024 {
		t.Fatalf("len %d", b.Len())
	}
	if b.NumBuckets() == 0 || b.NumBuckets() > 64 {
		t.Fatalf("buckets %d", b.NumBuckets())
	}
	for i := 0; i < 300; i++ {
		q := rng.Uint64n(1 << 41)
		r, err := b.Floor(q, HostID(i%64))
		if err != nil {
			t.Fatal(err)
		}
		want, wok := bruteFloor(keys, q)
		if r.Found != wok || (r.Found && r.Key != want) {
			t.Fatalf("Floor(%d) = %+v want %d,%v", q, r, want, wok)
		}
	}
	if _, err := b.Insert(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Delete(keys[5], 0); err != nil {
		t.Fatal(err)
	}
}

func TestPointsEndToEnd(t *testing.T) {
	c := NewCluster(128)
	rng := xrand.New(4)
	var pts []Point
	seen := map[uint64]bool{}
	for len(pts) < 200 {
		p := Point{uint32(rng.Uint64n(1 << 20)), uint32(rng.Uint64n(1 << 20))}
		k := uint64(p[0])<<32 | uint64(p[1])
		if !seen[k] {
			seen[k] = true
			pts = append(pts, p)
		}
	}
	w, err := NewPoints(c, 2, pts, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Stored points locate to their own leaves.
	for _, p := range pts[:40] {
		ok, hops, err := w.Contains(p, HostID(int(p[0])%128))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Contains(%v) false", p)
		}
		if hops <= 0 {
			t.Fatal("free query")
		}
	}
	// Nearest matches brute force.
	for i := 0; i < 60; i++ {
		q := Point{uint32(rng.Uint64n(1 << 20)), uint32(rng.Uint64n(1 << 20))}
		got, _, err := w.Nearest(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		var want Point
		best := ^uint64(0)
		for _, p := range pts {
			dx := int64(p[0]) - int64(q[0])
			dy := int64(p[1]) - int64(q[1])
			d := uint64(dx*dx + dy*dy)
			if d < best {
				best = d
				want = p
			}
		}
		gdx := int64(got[0]) - int64(q[0])
		gdy := int64(got[1]) - int64(q[1])
		if uint64(gdx*gdx+gdy*gdy) != best {
			t.Fatalf("Nearest(%v) = %v, brute force %v", q, got, want)
		}
	}
	if _, err := w.Insert(Point{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Delete(pts[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPoints(c, 1, nil, Options{}); err == nil {
		t.Fatal("dimension 1 accepted")
	}
	// Invalid points must surface as errors, not panics — the bulk-load
	// path must not precompute Morton codes before Build validates
	// (regression: PR 4's eager CodeOf loop panicked here).
	if _, err := NewPoints(c, 2, []Point{{1, 2}, {3}}, Options{}); err == nil {
		t.Fatal("wrong-dimension point accepted")
	}
	if _, err := NewPoints(c, 2, []Point{{1, 2}, {1 << 31, 5}}, Options{}); err == nil {
		t.Fatal("out-of-range coordinate accepted")
	}
}

func TestStringsEndToEnd(t *testing.T) {
	c := NewCluster(64)
	keys := []string{"carrot", "car", "cart", "dog", "dodge", "apple", "applet", "ape"}
	s, err := NewStrings(c, keys, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		ok, _, err := s.Contains(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Contains(%q) false", k)
		}
	}
	ok, _, err := s.Contains("ca", 0)
	if err != nil || ok {
		t.Fatalf("Contains(ca) = %v, %v", ok, err)
	}
	got, _, err := s.PrefixSearch("car", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"car", "carrot", "cart"}
	if len(got) != len(want) {
		t.Fatalf("PrefixSearch(car) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrefixSearch(car) = %v", got)
		}
	}
	if _, err := s.Insert("carpet", 0); err != nil {
		t.Fatal(err)
	}
	ok, _, _ = s.Contains("carpet", 0)
	if !ok {
		t.Fatal("inserted key missing")
	}
	if _, err := s.Delete("dog", 0); err != nil {
		t.Fatal(err)
	}
	ok, _, _ = s.Contains("dog", 0)
	if ok {
		t.Fatal("deleted key present")
	}
	loc, err := s.Search("application", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix("application", loc.Locus) {
		t.Fatalf("Search locus %q not a prefix", loc.Locus)
	}
}

func TestPlanarEndToEnd(t *testing.T) {
	c := NewCluster(32)
	bounds := PlanarBounds{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000}
	segments := []PlanarSegment{
		{A: PlanarPoint{-500, 0}, B: PlanarPoint{500, 100}},
		{A: PlanarPoint{-400, 300}, B: PlanarPoint{450, 400}},
		{A: PlanarPoint{-300, -400}, B: PlanarPoint{350, -350}},
	}
	p, err := NewPlanar(c, segments, bounds, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumFaces() != 10 {
		t.Fatalf("faces = %d, want 3n+1 = 10", p.NumFaces())
	}
	tr, err := p.Locate(PlanarPoint{0, 200}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Between the two upper segments: bottom is segment 0, top segment 1.
	if !tr.HasTop || !tr.HasBottom {
		t.Fatalf("face %+v should have both boundaries", tr)
	}
	if tr.Bottom.A != (PlanarPoint{-500, 0}) {
		t.Fatalf("bottom = %+v", tr.Bottom)
	}
	if tr.Top.A != (PlanarPoint{-400, 300}) {
		t.Fatalf("top = %+v", tr.Top)
	}
	// Above everything: top is the box.
	tr, err = p.Locate(PlanarPoint{0, 900}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.HasTop {
		t.Fatalf("face %+v should be bounded by the box above", tr)
	}
}

func TestClusterAccounting(t *testing.T) {
	c := NewCluster(16)
	keys := distinctKeys(xrand.New(7), 64)
	d, err := NewOneDim(c, keys, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	c.ResetTraffic()
	for i := 0; i < 10; i++ {
		if _, err := d.Floor(keys[i], HostID(i%16)); err != nil {
			t.Fatal(err)
		}
	}
	after := c.Stats()
	if after.TotalOps != 10 {
		t.Fatalf("ops = %d", after.TotalOps)
	}
	if after.MaxStorage != before.MaxStorage {
		t.Fatal("queries changed storage")
	}
}

func TestBlockedRange(t *testing.T) {
	c := NewCluster(64)
	keys := []uint64{}
	for i := uint64(0); i < 300; i++ {
		keys = append(keys, i*10)
	}
	b, err := NewBlocked(c, keys, Options{Seed: 21, M: 16})
	if err != nil {
		t.Fatal(err)
	}
	got, hops, err := b.Range(95, 152, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 110, 120, 130, 140, 150}
	if len(got) != len(want) {
		t.Fatalf("Range(95,152) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range(95,152) = %v", got)
		}
	}
	if hops <= 0 {
		t.Fatal("free range query")
	}
	// Inclusive bounds on stored keys.
	got, _, _ = b.Range(100, 100, 0)
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("Range(100,100) = %v", got)
	}
	// Empty result region.
	got, _, _ = b.Range(3001, 3005, 0)
	if len(got) != 0 {
		t.Fatalf("Range past max = %v", got)
	}
	// Whole set.
	got, _, _ = b.Range(0, 1<<40, 0)
	if len(got) != 300 {
		t.Fatalf("full range returned %d keys", len(got))
	}
	// Invalid range rejected.
	if _, _, err := b.Range(10, 5, 0); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestPointsOctree3D(t *testing.T) {
	c := NewCluster(64)
	rng := xrand.New(51)
	var pts []Point
	seen := map[uint64]bool{}
	for len(pts) < 300 {
		p := Point{
			uint32(rng.Uint64n(1 << 20)),
			uint32(rng.Uint64n(1 << 20)),
			uint32(rng.Uint64n(1 << 20)),
		}
		k := uint64(p[0])<<40 | uint64(p[1])<<20 | uint64(p[2])
		if !seen[k] {
			seen[k] = true
			pts = append(pts, p)
		}
	}
	w, err := NewPoints(c, 3, pts, Options{Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:50] {
		ok, _, err := w.Contains(p, HostID(int(p[0])%64))
		if err != nil || !ok {
			t.Fatalf("Contains(%v) = %v, %v", p, ok, err)
		}
	}
	// Exact 3-d nearest neighbor against brute force.
	for i := 0; i < 30; i++ {
		q := Point{
			uint32(rng.Uint64n(1 << 20)),
			uint32(rng.Uint64n(1 << 20)),
			uint32(rng.Uint64n(1 << 20)),
		}
		got, _, err := w.Nearest(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		best := ^uint64(0)
		for _, p := range pts {
			var d uint64
			for j := 0; j < 3; j++ {
				diff := int64(p[j]) - int64(q[j])
				d += uint64(diff * diff)
			}
			if d < best {
				best = d
			}
		}
		var gd uint64
		for j := 0; j < 3; j++ {
			diff := int64(got[j]) - int64(q[j])
			gd += uint64(diff * diff)
		}
		if gd != best {
			t.Fatalf("3-d Nearest(%v) = %v (dist %d, brute %d)", q, got, gd, best)
		}
	}
	if _, err := w.Insert(Point{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Delete(pts[0], 0); err != nil {
		t.Fatal(err)
	}
}
